//! The ingest datagram format: one UDP packet = one CRC-checked batch of
//! `(key, values…)` records.
//!
//! The TCP protocol pays a round trip and two fds per connection; the
//! ingest path is fire-and-forget — a writer packs as many records as fit
//! into one datagram and sends it. Delivery is **at-most-once**: a
//! datagram is either applied whole (the CRC covers the entire packet) or
//! dropped whole and counted, never partially applied.
//!
//! # Layout (versions 1 and 2)
//!
//! All multi-byte integers are little-endian; varints are the LEB128
//! encoding from [`qc_store::wire`].
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"QCDG"
//! 4       2     version = 1 or 2       (u16 LE)
//! 6       2     flags   = 0            (u16 LE, reserved — must be zero)
//! 8       8     sequence number        (u64 LE — version 2 only)
//! ·       var   record count `n`       (varint)
//! ·             n records, each:
//!                 var  key length in bytes (varint)
//!                 ·    key (UTF-8)
//!                 var  value count `m`     (varint)
//!                 8*m  value bits          (f64::to_bits, u64 LE each)
//! end-4   4     CRC-32 (IEEE)          (u32 LE, over all preceding bytes)
//! ```
//!
//! Version 2 adds a per-sender sequence number directly after the fixed
//! header, so a receiver can attribute silent kernel-buffer drops to the
//! gap between consecutive datagrams from one peer — [`peek_seq`] reads
//! it in O(1) without decoding the body. Version 1 datagrams (no
//! sequence) still decode; senders opt in with
//! [`DatagramBuilder::with_seq`].
//!
//! Values travel as raw `f64` bit patterns (not deltas): ingest batches
//! are unsorted measurement streams, so there is no ordered-bit locality
//! to exploit, and fixed-width values keep the encoder allocation-free
//! per element. Decoding is total and panic-free: every length claim is
//! checked against the bytes actually present **before** any allocation,
//! so a hostile 4-byte datagram claiming 2^60 records costs nothing.

use qc_store::wire::{crc32, get_varint, put_varint, WireError};

/// First four bytes of every ingest datagram.
pub const MAGIC: [u8; 4] = *b"QCDG";

/// The highest datagram version this module encodes and decodes.
pub const VERSION: u16 = 2;

/// Fixed header length in bytes (magic + version + flags).
pub const HEADER_LEN: usize = 8;

/// Length of the version-2 sequence number field.
pub const SEQ_LEN: usize = 8;

/// Trailing checksum length in bytes.
pub const CHECKSUM_LEN: usize = 4;

/// Largest payload a UDP datagram can carry over IPv4 (65535 minus the
/// IP and UDP headers). The daemon's receive buffer is sized one byte
/// past its configured cap so kernel truncation is detectable.
pub const MAX_DATAGRAM_LEN: usize = 65507;

/// Smallest possible encoded record: a zero-length key (1-byte varint)
/// with zero values (1-byte varint). Used to bound hostile record-count
/// claims before any allocation.
pub const MIN_RECORD_LEN: usize = 2;

/// One `(key, values…)` record inside a datagram.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Store key the values belong to.
    pub key: String,
    /// Batch of observations (bit-exact through the wire, NaNs included).
    pub values: Vec<f64>,
}

/// Typed decode failures. Every malformed datagram maps to one of these —
/// decoding must never panic, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatagramError {
    /// Fewer bytes than a well-formed datagram can occupy.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Version newer than this decoder understands.
    UnsupportedVersion {
        /// Version in the header.
        found: u16,
        /// Highest version this build decodes.
        supported: u16,
    },
    /// Reserved flag bits were set (v1 defines none).
    ReservedFlags {
        /// The flag word found.
        found: u16,
    },
    /// The trailing CRC-32 does not match the datagram contents.
    ChecksumMismatch {
        /// Checksum stored in the datagram.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// A varint ran past 64 bits or past the end of the payload.
    MalformedVarint {
        /// Byte offset of the varint's first byte.
        offset: usize,
    },
    /// A length claim (record count, key length, value count) exceeds the
    /// bytes actually present. Rejected before any allocation.
    LengthOverrun {
        /// Byte offset of the offending claim.
        offset: usize,
        /// Bytes the claim implies.
        claimed: u64,
        /// Bytes actually available.
        available: usize,
    },
    /// A key is not valid UTF-8.
    BadKeyUtf8 {
        /// Byte offset of the key's first byte.
        offset: usize,
    },
    /// Well-formed records followed by unexpected extra bytes.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
}

impl std::fmt::Display for DatagramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatagramError::Truncated { needed, have } => {
                write!(f, "truncated datagram: need {needed} bytes, have {have}")
            }
            DatagramError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            DatagramError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported datagram version {found} (decoder supports <= {supported})")
            }
            DatagramError::ReservedFlags { found } => {
                write!(f, "reserved flag bits set: {found:#06x}")
            }
            DatagramError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            DatagramError::MalformedVarint { offset } => {
                write!(f, "malformed varint at offset {offset}")
            }
            DatagramError::LengthOverrun { offset, claimed, available } => {
                write!(
                    f,
                    "length claim at offset {offset} implies {claimed} bytes, {available} available"
                )
            }
            DatagramError::BadKeyUtf8 { offset } => {
                write!(f, "key at offset {offset} is not valid UTF-8")
            }
            DatagramError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last record")
            }
        }
    }
}

impl std::error::Error for DatagramError {}

/// Incremental datagram assembly with a hard size budget.
///
/// Senders loop `push` until it declines, ship [`DatagramBuilder::finish`],
/// and keep pushing into the recycled builder — the classic fill-a-packet
/// loop. The budget accounts for the header, the worst-case record-count
/// varint, and the trailing CRC, so a finished datagram never exceeds
/// `max_len`.
#[derive(Debug)]
pub struct DatagramBuilder {
    body: Vec<u8>,
    records: u64,
    max_len: usize,
    /// `Some`: stamp each finished datagram with this sequence number and
    /// advance it (version-2 wire format); `None`: version 1, no sequence.
    seq: Option<u64>,
}

impl DatagramBuilder {
    /// A builder whose finished datagrams never exceed `max_len` bytes
    /// (clamped to at least one minimal record's worth of framing).
    pub fn new(max_len: usize) -> Self {
        let floor = HEADER_LEN + SEQ_LEN + 1 + MIN_RECORD_LEN + CHECKSUM_LEN;
        DatagramBuilder { body: Vec::new(), records: 0, max_len: max_len.max(floor), seq: None }
    }

    /// A sequence-numbered builder: each finished datagram carries the
    /// next consecutive sequence starting at `start_seq`, so the receiver
    /// can attribute drops. The 8-byte sequence field counts against the
    /// size budget.
    pub fn with_seq(max_len: usize, start_seq: u64) -> Self {
        let mut b = Self::new(max_len);
        b.seq = Some(start_seq);
        b
    }

    /// The sequence number the next finished datagram will carry
    /// (`None` for a version-1 builder).
    pub fn next_seq(&self) -> Option<u64> {
        self.seq
    }

    /// Number of records pushed since the last `finish`.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when nothing has been pushed since the last `finish`.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    fn seq_overhead(&self) -> usize {
        if self.seq.is_some() {
            SEQ_LEN
        } else {
            0
        }
    }

    /// Bytes the datagram would occupy if finished now.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.seq_overhead() + varint_len(self.records) + self.body.len() + CHECKSUM_LEN
    }

    /// Append one record if it fits in the remaining budget. Returns
    /// `false` (and leaves the builder unchanged) when it does not — the
    /// caller should `finish` the current datagram and push again. A
    /// record too large for an *empty* builder can never be sent; the
    /// caller sees `push` fail on a fresh builder and must split the
    /// batch.
    pub fn push(&mut self, key: &str, values: &[f64]) -> bool {
        let record_len = varint_len(key.len() as u64)
            + key.len()
            + varint_len(values.len() as u64)
            + 8 * values.len();
        let total = HEADER_LEN
            + self.seq_overhead()
            + varint_len(self.records + 1)
            + self.body.len()
            + record_len
            + CHECKSUM_LEN;
        if total > self.max_len {
            return false;
        }
        put_varint(&mut self.body, key.len() as u64);
        self.body.extend_from_slice(key.as_bytes());
        put_varint(&mut self.body, values.len() as u64);
        for v in values {
            self.body.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.records += 1;
        true
    }

    /// Seal the accumulated records into a wire datagram and reset the
    /// builder for reuse. `None` when nothing was pushed.
    pub fn finish(&mut self) -> Option<Vec<u8>> {
        if self.records == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC);
        let version: u16 = if self.seq.is_some() { 2 } else { 1 };
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        if let Some(seq) = &mut self.seq {
            out.extend_from_slice(&seq.to_le_bytes());
            *seq = seq.wrapping_add(1);
        }
        put_varint(&mut out, self.records);
        out.extend_from_slice(&self.body);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        self.body.clear();
        self.records = 0;
        Some(out)
    }
}

/// Encode a record batch as one version-1 (unsequenced) datagram, without
/// a size budget. For tests, benches, and callers that bound their
/// batches themselves; senders packing to the wire limit want
/// [`DatagramBuilder`].
pub fn encode_datagram(records: &[Record]) -> Vec<u8> {
    encode_datagram_impl(records, None)
}

/// Encode a record batch as one version-2 datagram carrying `seq`.
pub fn encode_datagram_seq(records: &[Record], seq: u64) -> Vec<u8> {
    encode_datagram_impl(records, Some(seq))
}

fn encode_datagram_impl(records: &[Record], seq: Option<u64>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    let version: u16 = if seq.is_some() { 2 } else { 1 };
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    if let Some(seq) = seq {
        out.extend_from_slice(&seq.to_le_bytes());
    }
    put_varint(&mut out, records.len() as u64);
    for rec in records {
        put_varint(&mut out, rec.key.len() as u64);
        out.extend_from_slice(rec.key.as_bytes());
        put_varint(&mut out, rec.values.len() as u64);
        for v in &rec.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode one datagram. Total and panic-free: any byte sequence returns
/// either the exact record batch that was encoded or a typed
/// [`DatagramError`], and no allocation is sized from an unvalidated
/// claim.
pub fn decode_datagram(buf: &[u8]) -> Result<Vec<Record>, DatagramError> {
    let min = HEADER_LEN + 1 + CHECKSUM_LEN;
    if buf.len() < min {
        return Err(DatagramError::Truncated { needed: min, have: buf.len() });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf[0..4]);
    if magic != MAGIC {
        return Err(DatagramError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version == 0 || version > VERSION {
        return Err(DatagramError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let flags = u16::from_le_bytes([buf[6], buf[7]]);
    if flags != 0 {
        return Err(DatagramError::ReservedFlags { found: flags });
    }
    // Version 2 carries an 8-byte sequence number before the record count.
    let seq_len = if version >= 2 { SEQ_LEN } else { 0 };
    let min = HEADER_LEN + seq_len + 1 + CHECKSUM_LEN;
    if buf.len() < min {
        return Err(DatagramError::Truncated { needed: min, have: buf.len() });
    }
    // CRC before structure: corruption anywhere in the packet surfaces as
    // one typed error instead of whichever parse step it happens to break.
    let crc_at = buf.len() - CHECKSUM_LEN;
    let stored =
        u32::from_le_bytes([buf[crc_at], buf[crc_at + 1], buf[crc_at + 2], buf[crc_at + 3]]);
    let computed = crc32(&buf[..crc_at]);
    if stored != computed {
        return Err(DatagramError::ChecksumMismatch { stored, computed });
    }
    let payload = &buf[..crc_at];
    let mut pos = HEADER_LEN + seq_len;
    let count_at = pos;
    let count = read_varint(payload, &mut pos)?;
    // A record occupies at least MIN_RECORD_LEN bytes, so a count claim
    // larger than the remaining payload admits is hostile — reject before
    // reserving anything.
    let remaining = payload.len() - pos;
    if count > (remaining / MIN_RECORD_LEN) as u64 {
        return Err(DatagramError::LengthOverrun {
            offset: count_at,
            claimed: count.saturating_mul(MIN_RECORD_LEN as u64),
            available: remaining,
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key_len_at = pos;
        let key_len = read_varint(payload, &mut pos)?;
        let available = payload.len() - pos;
        if key_len > available as u64 {
            return Err(DatagramError::LengthOverrun {
                offset: key_len_at,
                claimed: key_len,
                available,
            });
        }
        let key_at = pos;
        let key_bytes = &payload[pos..pos + key_len as usize];
        let key = std::str::from_utf8(key_bytes)
            .map_err(|_| DatagramError::BadKeyUtf8 { offset: key_at })?
            .to_owned();
        pos += key_len as usize;
        let val_count_at = pos;
        let val_count = read_varint(payload, &mut pos)?;
        let available = payload.len() - pos;
        let claimed = val_count.saturating_mul(8);
        if claimed > available as u64 {
            return Err(DatagramError::LengthOverrun { offset: val_count_at, claimed, available });
        }
        let mut values = Vec::with_capacity(val_count as usize);
        for _ in 0..val_count {
            let mut bits = [0u8; 8];
            bits.copy_from_slice(&payload[pos..pos + 8]);
            values.push(f64::from_bits(u64::from_le_bytes(bits)));
            pos += 8;
        }
        records.push(Record { key, values });
    }
    if pos != payload.len() {
        return Err(DatagramError::TrailingBytes { extra: payload.len() - pos });
    }
    Ok(records)
}

/// Read a version-2 datagram's sequence number in O(1), without decoding
/// (or CRC-checking) the body. `None` for version-1 datagrams, short
/// buffers, or wrong magic — callers treat those as "no sequence", the
/// same as a legacy sender. Corrupt sequenced datagrams may still yield a
/// sequence here and then fail full decoding; the receiver counts them as
/// delivered-but-rejected, which is what drop attribution wants.
pub fn peek_seq(buf: &[u8]) -> Option<u64> {
    if buf.len() < HEADER_LEN + SEQ_LEN + CHECKSUM_LEN || buf[0..4] != MAGIC {
        return None;
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version < 2 {
        return None;
    }
    let mut bits = [0u8; 8];
    bits.copy_from_slice(&buf[HEADER_LEN..HEADER_LEN + SEQ_LEN]);
    Some(u64::from_le_bytes(bits))
}

/// Encoded length of `v` as a varint.
fn varint_len(v: u64) -> usize {
    let mut scratch = Vec::with_capacity(10);
    put_varint(&mut scratch, v);
    scratch.len()
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DatagramError> {
    let offset = *pos;
    get_varint(buf, pos).map_err(|e| match e {
        WireError::MalformedVarint { offset } => DatagramError::MalformedVarint { offset },
        _ => DatagramError::MalformedVarint { offset },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let records = vec![
            Record { key: "latency.api".into(), values: vec![1.5, 2.5, f64::NAN, -0.0] },
            Record { key: String::new(), values: vec![] },
            Record { key: "π".into(), values: vec![3.25] },
        ];
        let bytes = encode_datagram(&records);
        let back = decode_datagram(&bytes).expect("roundtrip decodes");
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            let a_bits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn builder_respects_budget_and_matches_free_encoding() {
        let mut builder = DatagramBuilder::new(256);
        let mut pushed = Vec::new();
        let values = [1.0f64, 2.0, 3.0];
        let mut i = 0;
        while builder.push(&format!("key-{i}"), &values) {
            pushed.push(Record { key: format!("key-{i}"), values: values.to_vec() });
            i += 1;
        }
        assert!(!pushed.is_empty(), "at least one record fits the budget");
        let bytes = builder.finish().expect("non-empty builder finishes");
        assert!(bytes.len() <= 256, "finished datagram within budget: {}", bytes.len());
        assert_eq!(bytes, encode_datagram(&pushed));
        assert!(builder.is_empty(), "finish resets the builder");
        assert!(builder.finish().is_none());
    }

    #[test]
    fn sequenced_builder_stamps_and_advances() {
        let mut builder = DatagramBuilder::with_seq(512, 41);
        assert_eq!(builder.next_seq(), Some(41));
        assert!(builder.push("k", &[1.0, 2.0]));
        let first = builder.finish().expect("finish");
        assert_eq!(peek_seq(&first), Some(41));
        assert_eq!(builder.next_seq(), Some(42));
        assert_eq!(
            first,
            encode_datagram_seq(&[Record { key: "k".into(), values: vec![1.0, 2.0] }], 41)
        );
        let back = decode_datagram(&first).expect("v2 decodes");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].key, "k");

        assert!(builder.push("k", &[3.0]));
        let second = builder.finish().expect("finish again");
        assert_eq!(peek_seq(&second), Some(42), "seq advances per datagram");
    }

    #[test]
    fn sequenced_builder_respects_budget() {
        let max = 256;
        let mut builder = DatagramBuilder::with_seq(max, 0);
        let values = [1.0f64, 2.0, 3.0];
        let mut i = 0;
        while builder.push(&format!("key-{i}"), &values) {
            i += 1;
        }
        assert!(i > 0);
        let bytes = builder.finish().expect("non-empty");
        assert!(bytes.len() <= max, "sequenced datagram within budget: {}", bytes.len());
    }

    #[test]
    fn peek_seq_is_none_for_v1_and_garbage() {
        let v1 = encode_datagram(&[Record { key: "k".into(), values: vec![1.0] }]);
        assert_eq!(peek_seq(&v1), None);
        assert_eq!(peek_seq(b"QCDG"), None);
        assert_eq!(peek_seq(b"nope-nope-nope-nope-nope"), None);
        assert_eq!(peek_seq(&[]), None);
    }

    #[test]
    fn v1_datagrams_still_decode() {
        // A frozen byte image of the v1 layout (legacy sender): decoding
        // must keep working even though the encoder has moved to v2.
        let records = [Record { key: "legacy".into(), values: vec![7.5] }];
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 6);
        buf.extend_from_slice(b"legacy");
        put_varint(&mut buf, 1);
        buf.extend_from_slice(&7.5f64.to_bits().to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let back = decode_datagram(&buf).expect("v1 decodes");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], records[0]);
    }

    #[test]
    fn truncated_v2_header_is_typed() {
        let full = encode_datagram_seq(&[Record { key: "k".into(), values: vec![] }], 9);
        // Cut inside the sequence field: shorter than any valid v2 frame.
        let cut = &full[..HEADER_LEN + 3];
        assert!(matches!(decode_datagram(cut), Err(DatagramError::Truncated { .. })));
    }

    #[test]
    fn oversized_single_record_declines_on_fresh_builder() {
        let mut builder = DatagramBuilder::new(64);
        let values = vec![0.0f64; 64];
        assert!(!builder.push("k", &values));
        assert!(builder.is_empty());
    }

    #[test]
    fn hostile_record_count_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        put_varint(&mut buf, u64::MAX >> 1); // absurd record count
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        match decode_datagram(&buf) {
            Err(DatagramError::LengthOverrun { .. }) => {}
            other => panic!("expected LengthOverrun, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_crc_is_typed() {
        let mut bytes = encode_datagram(&[Record { key: "k".into(), values: vec![1.0] }]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(decode_datagram(&bytes), Err(DatagramError::ChecksumMismatch { .. })));
    }
}
