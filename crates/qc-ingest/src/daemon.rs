//! The ingest daemon: one never-blocking socket thread, a bounded queue,
//! N processor threads draining into the store's leased write path.
//!
//! ```text
//!   UDP socket ──recv──▶ socket thread ──try_push──▶ BoundedQueue
//!                          │   ▲                        │ pop
//!                          │   └─ CircuitBreaker        ▼
//!                          ▼                      processor × N
//!                     shed / count                 decode → leases
//!                                                      │
//!                                                      ▼
//!                                       SketchStore::update_many_leased
//! ```
//!
//! The socket thread does nothing that can block: `recv` (with a short
//! timeout so shutdown is bounded even if the wake datagram is lost),
//! an oversize check, a breaker decision, and a `try_push` that returns
//! immediately when the queue is full. All sketch work — decode, lease
//! checkout, Gather&Sort — happens on the processor threads, which may
//! fall behind; when they do, datagrams are **dropped and counted**,
//! never buffered unboundedly (the queue is the only buffer, and it is
//! bounded). This is the small-update-time regime of streaming ingest:
//! per-packet cost on the receive path is O(1) and independent of the
//! sketch.
//!
//! # Delivery and accounting
//!
//! At-most-once: a datagram is applied whole or dropped whole. Every
//! received datagram is classified exactly once, so at quiescence
//!
//! ```text
//! ingest_datagrams == ingest_applied_datagrams
//!                   + ingest_dropped_queue      (full queue + circuit shed)
//!                   + ingest_dropped_decode     (failed the codec)
//!                   + ingest_dropped_oversized  (longer than the cap)
//! ```
//!
//! and `ingest_applied_values` equals the weight the store gained through
//! this daemon. The e2e soak suite asserts both identities under a storm.
//!
//! Sequenced (version-2) datagrams additionally drive per-peer gap
//! accounting on the socket thread: a jump in a peer's sequence number
//! adds the gap to `ingest_seq_gaps` (datagrams the sender shipped that
//! never reached `recv` — kernel-buffer or network drops), and a sequence
//! below the expected next one counts as `ingest_seq_reordered` (it was
//! already provisionally counted as a gap). `seq_gaps − seq_reordered`
//! is therefore the best lower bound on silent pre-socket loss.
//!
//! # Shutdown ordering
//!
//! [`IngestHandle::shutdown`] severs the **socket thread first** (flag +
//! wake datagram + recv timeout backstop) and joins it before closing the
//! queue. Only then does the drain begin: processors pop what was already
//! accepted, apply it, and exit on the closed-and-empty queue. No
//! datagram can be accepted after the drain begins, so "drained" is a
//! stable state — the regression suite alongside `tests/shutdown.rs`
//! pins this ordering.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qc_store::{SketchStore, WriterLease};
use qc_telemetry::{Counter, EventKind, Gauge, LatencyRecorder, Registry};

use crate::breaker::{Admit, BreakerConfig, CircuitBreaker, Transition};
use crate::datagram::{decode_datagram, peek_seq, MAX_DATAGRAM_LEN};
use crate::queue::{BoundedQueue, PushError};

/// Ingest daemon construction parameters.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// UDP bind address (port 0 picks an ephemeral port; read it back
    /// from [`IngestHandle::local_addr`]).
    pub bind: String,
    /// Processor threads draining the queue into the store.
    pub processors: usize,
    /// Queue capacity in datagrams — the only buffer between the socket
    /// and the sketches. Beyond it, datagrams drop (counted).
    pub queue_capacity: usize,
    /// Datagrams longer than this are dropped as oversized (counted).
    /// Capped at the UDP maximum of [`MAX_DATAGRAM_LEN`].
    pub max_datagram_len: usize,
    /// Circuit-breaker tuning for sustained overload.
    pub breaker: BreakerConfig,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            bind: "127.0.0.1:0".to_string(),
            processors: 2,
            queue_capacity: 1024,
            max_datagram_len: MAX_DATAGRAM_LEN,
            breaker: BreakerConfig::default(),
        }
    }
}

impl IngestConfig {
    /// Set the bind address.
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.bind = addr.into();
        self
    }

    /// Set the processor thread count (clamped to ≥ 1).
    pub fn processors(mut self, n: usize) -> Self {
        self.processors = n.max(1);
        self
    }

    /// Set the queue capacity in datagrams (clamped to ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Set the per-datagram size cap.
    pub fn max_datagram_len(mut self, n: usize) -> Self {
        self.max_datagram_len = n.clamp(1, MAX_DATAGRAM_LEN);
        self
    }

    /// Set the circuit-breaker tuning.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }
}

/// Every ingest instrument, registered once at spawn into the store's
/// registry (one namespace with the store and serving instruments, one
/// `Metrics` frame).
struct IngestInstruments {
    registry: Arc<Registry>,
    /// `ingest_datagrams`: datagrams received (all later classifications
    /// partition this count).
    datagrams: Counter,
    /// `ingest_applied_datagrams`: datagrams fully applied to the store.
    applied_datagrams: Counter,
    /// `ingest_applied_records`: records inside applied datagrams.
    applied_records: Counter,
    /// `ingest_applied_values`: values (stream weight) applied.
    applied_values: Counter,
    /// `ingest_dropped_queue`: dropped because the queue was full or the
    /// circuit was open (the shed subset is counted again below).
    dropped_queue: Counter,
    /// `ingest_shed`: subset of `dropped_queue` shed on arrival while the
    /// circuit was open (never offered to the queue).
    shed: Counter,
    /// `ingest_dropped_decode`: failed [`decode_datagram`].
    dropped_decode: Counter,
    /// `ingest_dropped_oversized`: longer than the configured cap.
    dropped_oversized: Counter,
    /// `ingest_seq_gaps`: total sequence-number gap across peers —
    /// datagrams a sequenced sender shipped that never reached `recv`
    /// (plus reorderings, provisionally; see `seq_reordered`).
    seq_gaps: Counter,
    /// `ingest_seq_reordered`: sequenced datagrams that arrived with a
    /// sequence below the peer's expected next — each one retroactively
    /// converts one counted gap into a reordering.
    seq_reordered: Counter,
    /// `ingest_circuit_opens`: circuit-open transitions.
    circuit_opens: Counter,
    /// `ingest_queue_depth`: datagrams waiting for a processor.
    queue_depth: Gauge,
    /// `ingest_circuit_open`: 1 while the circuit is open.
    circuit_open: Gauge,
    /// `ingest_batch_seconds`: per-datagram processor latency (decode +
    /// apply), self-sketched into the store's own histogram engine.
    batch_seconds: LatencyRecorder,
}

impl IngestInstruments {
    fn register(registry: &Arc<Registry>) -> Arc<Self> {
        Arc::new(IngestInstruments {
            registry: Arc::clone(registry),
            datagrams: registry.counter("ingest_datagrams"),
            applied_datagrams: registry.counter("ingest_applied_datagrams"),
            applied_records: registry.counter("ingest_applied_records"),
            applied_values: registry.counter("ingest_applied_values"),
            dropped_queue: registry.counter("ingest_dropped_queue"),
            shed: registry.counter("ingest_shed"),
            dropped_decode: registry.counter("ingest_dropped_decode"),
            dropped_oversized: registry.counter("ingest_dropped_oversized"),
            seq_gaps: registry.counter("ingest_seq_gaps"),
            seq_reordered: registry.counter("ingest_seq_reordered"),
            circuit_opens: registry.counter("ingest_circuit_opens"),
            queue_depth: registry.gauge("ingest_queue_depth"),
            circuit_open: registry.gauge("ingest_circuit_open"),
            batch_seconds: registry.latency("ingest_batch_seconds"),
        })
    }
}

/// Entry point: binds the socket and spawns the ingest threads.
pub struct IngestDaemon;

impl IngestDaemon {
    /// Bind `cfg.bind` and start ingesting into `store`. The daemon
    /// registers its instruments in the store's telemetry registry and
    /// runs until [`IngestHandle::shutdown`] (or drop).
    pub fn spawn(store: Arc<SketchStore>, cfg: IngestConfig) -> std::io::Result<IngestHandle> {
        let socket = UdpSocket::bind(&*cfg.bind)?;
        let local_addr = socket.local_addr()?;
        // Bounded shutdown even if the wake datagram is lost: recv wakes
        // on this cadence and rechecks the flag.
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let max_len = cfg.max_datagram_len.clamp(1, MAX_DATAGRAM_LEN);
        let queue: Arc<BoundedQueue<Vec<u8>>> = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let shutdown = Arc::new(AtomicBool::new(false));
        let instruments = IngestInstruments::register(store.telemetry());
        let mut processors = Vec::with_capacity(cfg.processors.max(1));
        for i in 0..cfg.processors.max(1) {
            let queue = Arc::clone(&queue);
            let store = Arc::clone(&store);
            let instruments = Arc::clone(&instruments);
            let handle = std::thread::Builder::new()
                .name(format!("qc-ingest-proc-{i}"))
                .spawn(move || processor_loop(&queue, &store, &instruments))?;
            processors.push(handle);
        }
        let socket_thread = {
            let socket_queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let instruments = Arc::clone(&instruments);
            let breaker = CircuitBreaker::new(cfg.breaker);
            let spawned =
                std::thread::Builder::new().name("qc-ingest-socket".into()).spawn(move || {
                    socket_loop(&socket, &socket_queue, &shutdown, &instruments, breaker, max_len)
                });
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // Tear down the processors we already started.
                    queue.close();
                    for p in processors {
                        let _ = p.join();
                    }
                    return Err(e);
                }
            }
        };
        Ok(IngestHandle {
            local_addr,
            shutdown,
            queue,
            socket_thread: Some(socket_thread),
            processors,
        })
    }
}

/// A running ingest daemon; dropping it (or calling
/// [`shutdown`](IngestHandle::shutdown)) stops it gracefully: intake is
/// severed first, then the already-accepted queue drains into the store.
pub struct IngestHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Vec<u8>>>,
    socket_thread: Option<JoinHandle<()>>,
    processors: Vec<JoinHandle<()>>,
}

impl IngestHandle {
    /// The bound UDP address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current queue depth in datagrams (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown. Ordering contract (pinned by the regression
    /// suite): **(1)** the socket thread is severed and joined — from
    /// this point no datagram is accepted; **(2)** the queue closes and
    /// the processors drain every datagram accepted before the cut-off,
    /// applying or counting each one; **(3)** the processors are joined.
    /// After this returns, the accounting identity in the module docs
    /// holds exactly and no daemon thread remains.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // (1) Sever intake. The flag is set; wake the socket thread
        // promptly with a dummy datagram (the recv timeout is the
        // backstop if the kernel drops it).
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let wake_bind: &str = if wake_addr.is_ipv4() { "127.0.0.1:0" } else { "[::1]:0" };
        if let Ok(sock) = UdpSocket::bind(wake_bind) {
            let _ = sock.send_to(&[], wake_addr);
        }
        if let Some(handle) = self.socket_thread.take() {
            let _ = handle.join();
        }
        // (2) Intake is severed; begin the drain.
        self.queue.close();
        // (3) Processors apply the remainder and exit.
        for handle in self.processors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn socket_loop(
    socket: &UdpSocket,
    queue: &BoundedQueue<Vec<u8>>,
    shutdown: &AtomicBool,
    instruments: &IngestInstruments,
    mut breaker: CircuitBreaker,
    max_len: usize,
) {
    // One byte past the cap: a recv that fills the whole buffer was
    // (possibly) kernel-truncated, and anything longer than `max_len` is
    // oversized either way.
    let mut buf = vec![0u8; (max_len + 1).min(MAX_DATAGRAM_LEN + 1)];
    // Tracks whether we are inside an overload episode, so the Overload
    // event fires once per episode instead of once per dropped datagram.
    let mut in_overload = false;
    // Per-peer expected next sequence number for version-2 senders.
    // Entries stay for the socket thread's lifetime — each is 8 bytes per
    // distinct sender address, and the map is touched O(1) per datagram.
    let mut expected_seq: HashMap<SocketAddr, u64> = HashMap::new();
    loop {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok((len, peer)) => (len, peer),
            Err(_) => {
                // Timeout, EINTR, or a transient socket error: recheck the
                // flag and keep serving.
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Relaxed) {
            // Covers the wake datagram from `stop` — not counted.
            return;
        }
        instruments.datagrams.incr();
        // Gap accounting runs on everything that reached recv — including
        // datagrams dropped below — because the sequence measures what was
        // *delivered to us*, not what we went on to accept.
        if let Some(seq) = peek_seq(&buf[..len]) {
            match expected_seq.entry(peer) {
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let expected = *slot.get();
                    if seq >= expected {
                        instruments.seq_gaps.add(seq - expected);
                        slot.insert(seq.wrapping_add(1));
                    } else {
                        // Late arrival of something already counted as a
                        // gap; the expected cursor stays put.
                        instruments.seq_reordered.incr();
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    // First sighting of this peer establishes its baseline;
                    // whatever it sent before we were listening is not loss.
                    slot.insert(seq.wrapping_add(1));
                }
            }
        }
        if len > max_len {
            instruments.dropped_oversized.incr();
            continue;
        }
        let now = Instant::now();
        match breaker.admit(now) {
            Admit::Shed => {
                instruments.dropped_queue.incr();
                instruments.shed.incr();
            }
            Admit::Try => match queue.try_push(buf[..len].to_vec()) {
                Ok(()) => {
                    instruments.queue_depth.inc();
                    if let Some(Transition::Closed) = breaker.on_enqueued() {
                        instruments.circuit_open.set(0);
                        instruments.registry.event(EventKind::CircuitClose, "probe accepted");
                    }
                    in_overload = false;
                }
                Err(PushError::Full) => {
                    instruments.dropped_queue.incr();
                    if !in_overload {
                        in_overload = true;
                        instruments.registry.event(
                            EventKind::Overload,
                            format!("queue full at capacity {}", queue.capacity()),
                        );
                    }
                    if let Some(Transition::Opened(backoff)) = breaker.on_queue_full(now) {
                        instruments.circuit_opens.incr();
                        instruments.circuit_open.set(1);
                        instruments.registry.event(
                            EventKind::CircuitOpen,
                            format!("backoff_micros={}", backoff.as_micros()),
                        );
                    }
                }
                // The queue only closes after this thread is joined; if it
                // happens anyway (spawn-failure teardown), stop intake.
                Err(PushError::Closed) => return,
            },
        }
    }
}

/// A cached lease goes back to the store's pool after sitting unused for
/// this many processed datagrams.
const LEASE_IDLE_DATAGRAMS: u64 = 4096;

/// Datagrams between idle-lease sweeps.
const LEASE_SWEEP_INTERVAL: u64 = 512;

/// Per-processor writer leases, one per recently written key — the same
/// per-thread-handle discipline as the TCP connection loop, so N
/// processors hammering one hot key synchronize inside the sketch
/// (Gather&Sort/DCAS), not on a store mutex.
///
/// On a durable store, each leased write blocks (lock free) until its
/// log record is group-committed — all processors draining concurrently
/// share fsyncs through the store's commit sequencer, so durable ingest
/// throughput scales with group size rather than paying one disk flush
/// per drained batch.
struct ProcLeases {
    leases: HashMap<String, (WriterLease<f64>, u64)>,
    datagrams: u64,
}

impl ProcLeases {
    fn new() -> Self {
        ProcLeases { leases: HashMap::new(), datagrams: 0 }
    }

    fn write(&mut self, store: &SketchStore, key: &str, values: &[f64]) {
        if let Some((lease, used)) = self.leases.get_mut(key) {
            match store.update_many_leased(key, lease, values) {
                Ok(()) => {
                    *used = self.datagrams;
                    return;
                }
                // Removed, demoted, or re-created since minting; the
                // rejected lease holds no weight.
                Err(qc_store::StaleLease) => {
                    self.leases.remove(key);
                }
            }
        }
        store.update_many(key, values);
        if let Some(lease) = store.lease_writer(key) {
            self.leases.insert(key.to_owned(), (lease, self.datagrams));
        }
    }

    fn tick(&mut self, store: &SketchStore) {
        self.datagrams += 1;
        if !self.datagrams.is_multiple_of(LEASE_SWEEP_INTERVAL) {
            return;
        }
        let now = self.datagrams;
        let idle: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, (_, used))| now.saturating_sub(*used) > LEASE_IDLE_DATAGRAMS)
            .map(|(key, _)| key.clone())
            .collect();
        for key in idle {
            if let Some((lease, _)) = self.leases.remove(&key) {
                store.return_lease(&key, lease);
            }
        }
    }

    fn release_all(&mut self, store: &SketchStore) {
        for (key, (lease, _)) in self.leases.drain() {
            store.return_lease(&key, lease);
        }
    }
}

fn processor_loop(
    queue: &BoundedQueue<Vec<u8>>,
    store: &SketchStore,
    instruments: &IngestInstruments,
) {
    let mut leases = ProcLeases::new();
    while let Some(datagram) = queue.pop() {
        instruments.queue_depth.dec();
        let start = Instant::now();
        match decode_datagram(&datagram) {
            Err(e) => {
                instruments.dropped_decode.incr();
                instruments.registry.event(EventKind::ProtoError, format!("ingest {e}"));
            }
            Ok(records) => {
                let mut values = 0u64;
                for rec in &records {
                    leases.write(store, &rec.key, &rec.values);
                    values += rec.values.len() as u64;
                }
                // Applied counters move only after every record landed, so
                // a mid-flight sample never over-reports applied weight.
                instruments.applied_datagrams.incr();
                instruments.applied_records.add(records.len() as u64);
                instruments.applied_values.add(values);
            }
        }
        instruments.batch_seconds.record_duration(start.elapsed());
        leases.tick(store);
    }
    leases.release_all(store);
}
