//! **qc-ingest** — the high-rate UDP ingest front-end for the keyed
//! sketch store.
//!
//! The TCP serving layer ([`qc-server`](https://docs.rs)) costs one round
//! trip per frame and two fds per connection; the write-heavy half of the
//! paper's workload — millions of fire-and-forget measurements — wants
//! neither. This crate is the datagram path:
//!
//! * [`datagram`] — a versioned, CRC-checked packet format (one datagram
//!   = many `(key, values…)` records) built from the same
//!   [`qc_store::wire`] varint/CRC primitives as every other format in
//!   the workspace. Panic-free total decode, allocation bounds validated
//!   before any reserve.
//! * [`queue`] — the bounded MPMC hand-off between the socket and the
//!   processors; `try_push` never blocks.
//! * [`breaker`] — a deterministic, clock-injected circuit breaker that
//!   sheds sustained overload with exponential backoff.
//! * [`daemon`] — the assembled [`daemon::IngestDaemon`]: one socket
//!   thread that never blocks, N processors draining batches into
//!   [`qc_store::SketchStore::update_many_leased`] with per-thread lease
//!   reuse, exact drop accounting (queue-full, decode-error, oversized —
//!   each its own counter), and `qc-telemetry` instruments in the store's
//!   registry, so drops and queue depth travel over the existing
//!   `Metrics` frame.
//!
//! Delivery is **at-most-once**: every received datagram is applied
//! whole or dropped whole, and every drop is counted. The conservation
//! identity (see [`daemon`]) is asserted under storm load by the e2e
//! soak suite.
//!
//! Everything is `std`-only, like the rest of the workspace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breaker;
pub mod daemon;
pub mod datagram;
pub mod queue;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use daemon::{IngestConfig, IngestDaemon, IngestHandle};
pub use datagram::{
    decode_datagram, encode_datagram, DatagramBuilder, DatagramError, Record, MAX_DATAGRAM_LEN,
};
