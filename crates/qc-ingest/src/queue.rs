//! A bounded multi-producer/multi-consumer queue whose producer side
//! **never blocks**.
//!
//! `std::sync::mpsc::sync_channel` is single-consumer; the daemon needs
//! one socket thread feeding N processor threads, a `try_push` that
//! returns immediately when the queue is full (the socket thread must
//! never park behind a slow processor — overload is shed, not buffered
//! into the kernel), and an exact depth reading for the queue gauge. A
//! `Mutex<VecDeque>` + `Condvar` does all three: the critical sections
//! are a handful of pointer moves, far below the per-datagram decode and
//! sketch work they hand off.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why `try_push` declined an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item was dropped (count it).
    Full,
    /// The queue was closed; no further items will be consumed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Shared by reference (the daemon wraps it in an `Arc`).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (exact at the instant of the lock hold).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without ever blocking. On [`PushError::Full`] the caller
    /// keeps `item` back (it is returned untouched inside the `Err`
    /// conceptually — the queue never saw it) and accounts the drop.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives or the queue is closed
    /// **and drained**. `None` means: closed, and every item that was ever
    /// accepted has been popped — the consumer may exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain what remains and then see `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn multi_consumer_conserves_items() {
        let q = Arc::new(BoundedQueue::new(64));
        let total = 10_000u64;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        let mut i = 1u64;
        while i <= total {
            if q.try_push(i).is_ok() {
                pushed += i;
                i += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
