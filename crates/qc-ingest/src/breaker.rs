//! The overload circuit breaker: shed load cheaply when the processor
//! queue stays saturated.
//!
//! One full `try_push` is noise; a long run of them means the processors
//! are behind and every further enqueue attempt just burns the socket
//! thread's budget (lock, refusal, accounting) without helping. The
//! breaker watches *consecutive* queue-full refusals and, past a
//! threshold, **opens**: incoming datagrams are dropped on arrival for a
//! backoff window, without touching the queue at all. At the window's end
//! it goes **half-open** and lets exactly one probe datagram try the
//! queue: success closes the circuit, another refusal re-opens it with
//! the backoff doubled (capped). This is the classic AIMD-flavoured
//! breaker, deterministic and clock-injected so the state machine is unit
//! testable without sleeping.
//!
//! All sheds are *counted* — the breaker changes where an overloaded
//! datagram is dropped (before the queue instead of at it), never whether
//! the drop is visible in the accounting.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive queue-full refusals that open the circuit.
    pub open_after: u32,
    /// First open window; doubles on each failed probe.
    pub initial_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 64,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// What the breaker tells the socket thread to do with one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Try the queue (normal operation, or a half-open probe).
    Try,
    /// Drop immediately; the circuit is open.
    Shed,
}

/// Observable state transitions, surfaced as telemetry events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// The circuit just opened with this backoff window.
    Opened(Duration),
    /// The circuit just closed (a probe got through).
    Closed,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { consecutive_full: u32 },
    Open { until: Instant, backoff: Duration },
    HalfOpen { backoff: Duration },
}

/// The breaker state machine. Owned by the socket thread; all methods
/// take the caller's clock so tests drive time explicitly.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: State,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        let cfg = BreakerConfig {
            open_after: cfg.open_after.max(1),
            initial_backoff: cfg.initial_backoff.max(Duration::from_micros(1)),
            max_backoff: cfg.max_backoff.max(cfg.initial_backoff),
        };
        CircuitBreaker { cfg, state: State::Closed { consecutive_full: 0 } }
    }

    /// True while the circuit is open (diagnostics/gauge).
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. } | State::HalfOpen { .. })
    }

    /// Decide one datagram's fate. `Admit::Try` means attempt the queue
    /// and report the outcome back via [`CircuitBreaker::on_enqueued`] or
    /// [`CircuitBreaker::on_queue_full`]; `Admit::Shed` means drop it now.
    pub fn admit(&mut self, now: Instant) -> Admit {
        match self.state {
            State::Closed { .. } => Admit::Try,
            State::Open { until, backoff } => {
                if now >= until {
                    // Window elapsed: the next datagram is the probe.
                    self.state = State::HalfOpen { backoff };
                    Admit::Try
                } else {
                    Admit::Shed
                }
            }
            State::HalfOpen { .. } => {
                // Only one probe per window: until its outcome arrives,
                // further datagrams shed. (The socket thread reports the
                // outcome immediately after `try_push`, so in practice
                // this arm is not reached between probe and verdict.)
                Admit::Shed
            }
        }
    }

    /// The queue accepted a datagram.
    pub fn on_enqueued(&mut self) -> Option<Transition> {
        match self.state {
            State::Closed { consecutive_full: 0 } => None,
            State::Closed { .. } => {
                self.state = State::Closed { consecutive_full: 0 };
                None
            }
            State::HalfOpen { .. } | State::Open { .. } => {
                // Probe success: service restored.
                self.state = State::Closed { consecutive_full: 0 };
                Some(Transition::Closed)
            }
        }
    }

    /// The queue refused a datagram (full).
    pub fn on_queue_full(&mut self, now: Instant) -> Option<Transition> {
        match self.state {
            State::Closed { consecutive_full } => {
                let consecutive_full = consecutive_full + 1;
                if consecutive_full >= self.cfg.open_after {
                    let backoff = self.cfg.initial_backoff;
                    self.state = State::Open { until: now + backoff, backoff };
                    Some(Transition::Opened(backoff))
                } else {
                    self.state = State::Closed { consecutive_full };
                    None
                }
            }
            State::HalfOpen { backoff } | State::Open { backoff, .. } => {
                // Failed probe: double the window, stay open.
                let backoff = (backoff * 2).min(self.cfg.max_backoff);
                self.state = State::Open { until: now + backoff, backoff };
                Some(Transition::Opened(backoff))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            open_after: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
        }
    }

    #[test]
    fn opens_after_consecutive_fulls_only() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert_eq!(b.on_queue_full(t0), None);
        assert_eq!(b.on_queue_full(t0), None);
        // A success resets the run.
        assert_eq!(b.on_enqueued(), None);
        assert_eq!(b.on_queue_full(t0), None);
        assert_eq!(b.on_queue_full(t0), None);
        assert_eq!(b.on_queue_full(t0), Some(Transition::Opened(Duration::from_millis(10))));
        assert!(b.is_open());
    }

    #[test]
    fn sheds_while_open_then_probes() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_queue_full(t0);
        }
        assert_eq!(b.admit(t0 + Duration::from_millis(5)), Admit::Shed);
        // Window over: one probe allowed, followers shed until a verdict.
        assert_eq!(b.admit(t0 + Duration::from_millis(10)), Admit::Try);
        assert_eq!(b.admit(t0 + Duration::from_millis(10)), Admit::Shed);
    }

    #[test]
    fn failed_probe_doubles_backoff_to_cap_and_success_closes() {
        let mut b = CircuitBreaker::new(cfg());
        let mut now = Instant::now();
        for _ in 0..3 {
            b.on_queue_full(now);
        }
        // 10 -> 20 -> 40 -> 40 (cap)
        for expect_ms in [20u64, 40, 40] {
            now += Duration::from_millis(500);
            assert_eq!(b.admit(now), Admit::Try);
            assert_eq!(
                b.on_queue_full(now),
                Some(Transition::Opened(Duration::from_millis(expect_ms)))
            );
        }
        now += Duration::from_millis(500);
        assert_eq!(b.admit(now), Admit::Try);
        assert_eq!(b.on_enqueued(), Some(Transition::Closed));
        assert!(!b.is_open());
        assert_eq!(b.admit(now), Admit::Try);
    }
}
