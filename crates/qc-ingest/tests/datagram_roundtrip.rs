//! Datagram codec property tests, mirroring the TCP protocol's
//! `proto_roundtrip` suite: every record batch round-trips bit-exactly,
//! and corrupted datagrams of every flavour — truncation, bit flips,
//! random garbage, hostile length claims, wrong magic/version/flags —
//! come back as typed [`DatagramError`]s. Never a panic, never an
//! allocation of attacker-controlled size: this is the parser an open
//! UDP port points at the internet.

use proptest::prelude::*;
use qc_ingest::datagram::{
    decode_datagram, encode_datagram, encode_datagram_seq, peek_seq, DatagramBuilder,
    DatagramError, Record, CHECKSUM_LEN, HEADER_LEN, MAGIC, MAX_DATAGRAM_LEN, SEQ_LEN, VERSION,
};
use qc_store::wire::{crc32, put_varint};

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn f64_strategy() -> impl Strategy<Value = f64> {
    // Raw bit patterns: NaNs, infinities, subnormals all travel.
    any::<u64>().prop_map(f64::from_bits)
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (key_strategy(), prop::collection::vec(f64_strategy(), 0..32))
        .prop_map(|(key, values)| Record { key, values })
}

fn records_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(record_strategy(), 0..12)
}

/// Bit-exact record equality (plain `==` treats NaN != NaN).
fn same_records(a: &[Record], b: &[Record]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.key == y.key
                && x.values.len() == y.values.len()
                && x.values.iter().zip(&y.values).all(|(v, w)| v.to_bits() == w.to_bits())
        })
}

/// A syntactically pristine envelope (magic, version, flags, CRC all
/// valid) around an arbitrary payload — isolates the record parser from
/// the envelope checks.
fn enveloped(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + SEQ_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // v2 sequence number
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_is_bit_exact_identity(records in records_strategy()) {
        let bytes = encode_datagram(&records);
        prop_assert!(bytes.len() <= MAX_DATAGRAM_LEN);
        let back = decode_datagram(&bytes).unwrap();
        prop_assert!(same_records(&records, &back), "{records:?} != {back:?}");
    }

    #[test]
    fn sequenced_roundtrip_is_bit_exact_identity(records in records_strategy(), seq in any::<u64>()) {
        let bytes = encode_datagram_seq(&records, seq);
        prop_assert!(bytes.len() <= MAX_DATAGRAM_LEN);
        prop_assert_eq!(peek_seq(&bytes), Some(seq));
        let back = decode_datagram(&bytes).unwrap();
        prop_assert!(same_records(&records, &back), "{records:?} != {back:?}");
    }

    #[test]
    fn sequenced_bit_flips_are_always_detected(records in records_strategy(), seq in any::<u64>(), pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = encode_datagram_seq(&records, seq);
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(decode_datagram(&bytes).is_err());
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error(records in records_strategy(), cut in 0.0f64..1.0) {
        let bytes = encode_datagram(&records);
        let len = (bytes.len() as f64 * cut) as usize;
        if len < bytes.len() {
            // A prefix can never be a valid datagram: the CRC trails the
            // payload, so cutting anywhere invalidates it (or leaves too
            // few bytes to even hold an envelope).
            prop_assert!(decode_datagram(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn single_bit_flips_are_always_detected(records in records_strategy(), pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = encode_datagram(&records);
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        // CRC-32 detects every single-bit error; a flip in the header
        // fields is caught even earlier by magic/version/flags checks.
        prop_assert!(decode_datagram(&bytes).is_err());
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_datagram(&bytes);
    }

    #[test]
    fn valid_envelope_hostile_payload_never_panics(payload in prop::collection::vec(any::<u8>(), 0..128)) {
        // Adversary who bothers to compute the CRC: the record parser
        // itself must stay total.
        let _ = decode_datagram(&enveloped(&payload));
    }

    #[test]
    fn absurd_record_counts_are_rejected_before_allocation(count in 1u64 << 20..u64::MAX) {
        // Claims `count` records but carries none. The claim bound
        // (`count * MIN_RECORD_LEN` vs bytes present) must fire before any
        // `Vec::with_capacity(count)`.
        let mut payload = Vec::new();
        put_varint(&mut payload, count);
        prop_assert!(matches!(
            decode_datagram(&enveloped(&payload)),
            Err(DatagramError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn absurd_key_lengths_are_rejected_before_allocation(klen in 1u64 << 20..u64::MAX) {
        // One record whose key claims up to u64::MAX bytes.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // record count
        put_varint(&mut payload, klen); // key length, nothing behind it
        prop_assert!(matches!(
            decode_datagram(&enveloped(&payload)),
            Err(DatagramError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn absurd_value_counts_are_rejected_before_allocation(vcount in 1u64 << 20..u64::MAX) {
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // record count
        put_varint(&mut payload, 1); // key length
        payload.push(b'k');
        put_varint(&mut payload, vcount); // value count, nothing behind it
        prop_assert!(matches!(
            decode_datagram(&enveloped(&payload)),
            Err(DatagramError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_typed(magic_bits in any::<u32>(), records in records_strategy()) {
        let magic = magic_bits.to_le_bytes();
        prop_assume!(magic != MAGIC);
        let mut bytes = encode_datagram(&records);
        bytes[..4].copy_from_slice(&magic);
        let crc = crc32(&bytes[..bytes.len() - CHECKSUM_LEN]);
        let crc_at = bytes.len() - CHECKSUM_LEN;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        prop_assert_eq!(
            decode_datagram(&bytes),
            Err(DatagramError::BadMagic { found: magic })
        );
    }

    #[test]
    fn future_versions_are_typed(version in VERSION + 1..u16::MAX, records in records_strategy()) {
        let mut bytes = encode_datagram(&records);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - CHECKSUM_LEN]);
        let crc_at = bytes.len() - CHECKSUM_LEN;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        prop_assert_eq!(
            decode_datagram(&bytes),
            Err(DatagramError::UnsupportedVersion { found: version, supported: VERSION })
        );
    }

    #[test]
    fn reserved_flags_are_typed(flags in 1u16..u16::MAX, records in records_strategy()) {
        let mut bytes = encode_datagram(&records);
        bytes[6..8].copy_from_slice(&flags.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - CHECKSUM_LEN]);
        let crc_at = bytes.len() - CHECKSUM_LEN;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        prop_assert_eq!(
            decode_datagram(&bytes),
            Err(DatagramError::ReservedFlags { found: flags })
        );
    }

    #[test]
    fn trailing_bytes_are_typed(records in records_strategy(), extra in 1usize..16) {
        // Well-formed records followed by surplus payload bytes (CRC made
        // valid again so the parser is what rejects them).
        let bytes = encode_datagram(&records);
        let mut payload = bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN].to_vec();
        payload.extend(vec![0u8; extra]);
        // The surplus zeros may parse as further length claims; either
        // way the decode must fail with a typed error, not absorb them.
        prop_assert!(decode_datagram(&enveloped(&payload)).is_err());
    }

    #[test]
    fn builder_output_decodes_to_pushed_records(
        records in prop::collection::vec(
            (key_strategy(), prop::collection::vec(f64_strategy(), 1..16)),
            1..8
        )
    ) {
        let mut builder = DatagramBuilder::new(MAX_DATAGRAM_LEN);
        let mut pushed = Vec::new();
        for (key, values) in &records {
            if builder.push(key, values) {
                pushed.push(Record { key: key.clone(), values: values.clone() });
            }
        }
        prop_assert_eq!(builder.records() as usize, pushed.len());
        if let Some(bytes) = builder.finish() {
            prop_assert!(bytes.len() <= MAX_DATAGRAM_LEN);
            let back = decode_datagram(&bytes).unwrap();
            prop_assert!(same_records(&pushed, &back));
            // The builder resets after finish.
            prop_assert!(builder.is_empty());
        } else {
            prop_assert!(pushed.is_empty());
        }
    }

    #[test]
    fn builder_respects_tight_budgets(
        budget in 32usize..256,
        records in prop::collection::vec(
            (key_strategy(), prop::collection::vec(f64_strategy(), 0..8)),
            1..16
        )
    ) {
        // Fill-a-packet loop under a small budget: every shipped datagram
        // obeys the cap and decodes; every record either ships or was
        // declined (never silently mangled).
        let mut builder = DatagramBuilder::new(budget);
        let floor = builder.finish().map(|b| b.len()).unwrap_or(0);
        prop_assert_eq!(floor, 0, "empty builder must not emit");
        let mut shipped = 0usize;
        for (key, values) in &records {
            if !builder.push(key, values) {
                if let Some(bytes) = builder.finish() {
                    prop_assert!(bytes.len() <= budget);
                    shipped += decode_datagram(&bytes).unwrap().len();
                }
                // Retry into the fresh builder; a decline now means the
                // record alone exceeds the budget.
                if builder.push(key, values) {
                    // accepted on retry
                } else {
                    continue;
                }
            }
        }
        if let Some(bytes) = builder.finish() {
            shipped += decode_datagram(&bytes).unwrap().len();
        }
        prop_assert!(shipped <= records.len());
    }
}

#[test]
fn corrupt_crc_is_typed_with_both_values() {
    let records = vec![Record { key: "k".into(), values: vec![1.0, 2.0] }];
    let mut bytes = encode_datagram(&records);
    let crc_at = bytes.len() - CHECKSUM_LEN;
    let stored = u32::from_le_bytes(bytes[crc_at..].try_into().unwrap()) ^ 0xDEAD_BEEF;
    bytes[crc_at..].copy_from_slice(&stored.to_le_bytes());
    match decode_datagram(&bytes) {
        Err(DatagramError::ChecksumMismatch { stored: s, computed }) => {
            assert_eq!(s, stored);
            assert_ne!(s, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}
