//! Interval-Based memory Reclamation (IBR) with a type-stable block pool.
//!
//! The Quancurrent paper (§5.1) bases its memory management on IBR
//! (Wen, Izraelevitz, Cai, Beadle & Scott, *Interval-Based Memory
//! Reclamation*, PPoPP'18). This crate is a from-scratch Rust
//! implementation of the **2GE** ("two global eras") IBR variant:
//!
//! * A [`Domain`] owns a global **era** counter that advances as blocks are
//!   allocated.
//! * Every tracked block carries a header with its **birth era** (stamped at
//!   allocation) and **retire era** (stamped when the block is unlinked and
//!   retired). The interval `[birth, retire]` is the block's *lifespan*.
//! * Every thread registers a [`LocalHandle`] and, for the duration of each
//!   operation, holds a [`Guard`] that publishes a **reservation interval**
//!   `[lower, upper]` of eras it may be reading.
//! * A retired block is reclaimed only when its lifespan intersects **no**
//!   thread's reservation.
//!
//! ## The read protocol
//!
//! [`Guard::protect`] implements the 2GE read: load the word, re-read the
//! global era, and retry (raising the published `upper`) until the era was
//! stable across one load. A block reachable at load time was then born at
//! or before, and can only be retired at or after, an era the reservation
//! covers — so its lifespan intersects the reservation and it survives
//! every sweep until the guard drops.
//!
//! Reclaimed blocks are recycled through a per-[`Domain`] **pool keyed by
//! layout** and their memory is only handed back to the global allocator
//! when the `Domain` itself drops. Headers stay atomically readable for the
//! domain's lifetime (type-stable memory), matching the original IBR
//! implementation; payloads are dropped in place exactly once, at
//! reclamation.
//!
//! ## Usage sketch
//!
//! ```
//! use qc_reclaim::{Domain, Shared};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let domain = Domain::new();
//! let handle = domain.register();
//!
//! // Publish a block through an atomic word (as a raw address).
//! let shared: Shared<Vec<u64>> = handle.alloc(vec![1, 2, 3]);
//! let word = AtomicU64::new(shared.into_raw());
//!
//! // A reader protects the word before dereferencing.
//! let guard = handle.pin();
//! let raw = guard.protect(|| word.load(Ordering::SeqCst));
//! let re: Shared<Vec<u64>> = unsafe { Shared::from_raw(raw) };
//! assert_eq!(unsafe { re.deref() }, &vec![1, 2, 3]);
//! drop(guard);
//!
//! // The writer unlinks and retires; the domain reclaims when safe.
//! let old = unsafe { Shared::<Vec<u64>>::from_raw(word.swap(0, Ordering::SeqCst)) };
//! unsafe { handle.retire(old) };
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod block;
mod domain;
mod guard;
mod handle;
mod pool;

pub use block::Shared;
pub use domain::{Domain, DomainConfig, DomainStats};
pub use guard::Guard;
pub use handle::LocalHandle;
