//! Type-stable block pool.
//!
//! Reclaimed blocks are *recycled*, not deallocated: their memory stays
//! valid (header readable) until the [`crate::Domain`] drops. This is what
//! makes IBR's optimistic header reads sound — see the crate docs.

use std::alloc::Layout;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::block::Header;

/// Key: (size, align) of the whole block.
type ClassKey = (usize, usize);

/// A free-list pool of payload-dropped blocks, keyed by layout class.
///
/// Addresses are stored as `usize` to keep the container `Send`/`Sync`
/// without pointer-wrapper boilerplate.
#[derive(Default)]
pub(crate) struct BlockPool {
    classes: Mutex<HashMap<ClassKey, Vec<usize>>>,
}

impl BlockPool {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Take a recycled block of the given layout, if one is available.
    pub(crate) fn take(&self, layout: Layout) -> Option<*mut Header> {
        let mut classes = self.classes.lock().unwrap();
        classes
            .get_mut(&(layout.size(), layout.align()))
            .and_then(|v| v.pop())
            .map(|addr| addr as *mut Header)
    }

    /// Return a payload-dropped block to the pool.
    ///
    /// # Safety
    /// `ptr` must be a block allocated through this crate whose payload has
    /// already been dropped, and must not be referenced anywhere.
    pub(crate) unsafe fn put(&self, ptr: *mut Header) {
        // SAFETY: header of an unlinked block is private to us now.
        let layout = unsafe { (*ptr).layout };
        let mut classes = self.classes.lock().unwrap();
        classes.entry((layout.size(), layout.align())).or_default().push(ptr as usize);
    }

    /// Number of pooled blocks (all classes).
    pub(crate) fn len(&self) -> usize {
        self.classes.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Deallocate every pooled block. Called from `Domain::drop`.
    pub(crate) fn dealloc_all(&self) {
        let mut classes = self.classes.lock().unwrap();
        for ((size, align), ptrs) in classes.drain() {
            let layout = Layout::from_size_align(size, align).expect("valid pooled layout");
            for addr in ptrs {
                // SAFETY: pooled blocks are unreachable and payload-dropped;
                // the domain is tearing down, so type-stability ends here.
                unsafe { std::alloc::dealloc(addr as *mut u8, layout) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{drop_block_payload, Block, NOT_RETIRED};
    use std::sync::atomic::AtomicU64;

    fn fresh_block(v: u64) -> *mut Header {
        let layout = Block::<u64>::layout();
        let ptr = unsafe { std::alloc::alloc(layout) } as *mut Block<u64>;
        assert!(!ptr.is_null());
        unsafe {
            std::ptr::write(
                ptr,
                Block {
                    header: Header {
                        birth_era: AtomicU64::new(0),
                        retire_era: AtomicU64::new(NOT_RETIRED),
                        drop_fn: drop_block_payload::<u64>,
                        layout,
                    },
                    value: v,
                },
            );
        }
        ptr as *mut Header
    }

    #[test]
    fn take_from_empty_pool_is_none() {
        let pool = BlockPool::new();
        assert!(pool.take(Block::<u64>::layout()).is_none());
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn put_then_take_recycles_same_block() {
        let pool = BlockPool::new();
        let b = fresh_block(42);
        unsafe { pool.put(b) };
        assert_eq!(pool.len(), 1);
        let got = pool.take(Block::<u64>::layout()).unwrap();
        assert_eq!(got as usize, b as usize);
        assert_eq!(pool.len(), 0);
        // Clean up the raw block we made outside a domain.
        unsafe { std::alloc::dealloc(got as *mut u8, Block::<u64>::layout()) };
    }

    #[test]
    fn classes_are_isolated_by_layout() {
        let pool = BlockPool::new();
        let b = fresh_block(7);
        unsafe { pool.put(b) };
        // A differently-sized class must not satisfy the request.
        assert!(pool.take(Block::<[u64; 9]>::layout()).is_none());
        assert!(pool.take(Block::<u64>::layout()).is_some());
        unsafe { std::alloc::dealloc(b as *mut u8, Block::<u64>::layout()) };
    }

    #[test]
    fn dealloc_all_empties_pool() {
        let pool = BlockPool::new();
        for i in 0..4 {
            unsafe { pool.put(fresh_block(i)) };
        }
        assert_eq!(pool.len(), 4);
        pool.dealloc_all();
        assert_eq!(pool.len(), 0);
    }
}
