//! The reclamation domain: global era, reservation table, recycling pool.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use crate::block::Header;
use crate::handle::LocalHandle;
use crate::pool::BlockPool;

/// Tuning knobs for a [`Domain`].
#[derive(Clone, Debug)]
pub struct DomainConfig {
    /// Advance the global era once per this many allocations (per handle).
    /// Smaller values reclaim memory sooner at the cost of more shared-
    /// counter traffic. IBR calls this `epoch_freq`.
    pub era_frequency: usize,
    /// Attempt reclamation once per this many retires (per handle). IBR
    /// calls this `empty_freq`.
    pub empty_frequency: usize,
    /// Maximum number of concurrently registered handles.
    pub max_threads: usize,
}

impl Default for DomainConfig {
    fn default() -> Self {
        Self { era_frequency: 64, empty_frequency: 32, max_threads: 128 }
    }
}

/// `lower` value of an empty reservation: no era is protected.
pub(crate) const RESERVATION_NONE_LOWER: u64 = u64::MAX;
/// `upper` value of an empty reservation.
pub(crate) const RESERVATION_NONE_UPPER: u64 = 0;

/// One thread's published reservation interval `[lower, upper]`.
///
/// Aligned to two cache lines so scans by reclaiming threads do not false-
/// share with the hot `upper` updates of readers on adjacent slots.
#[repr(align(128))]
pub(crate) struct Reservation {
    /// 1 while a [`LocalHandle`] owns this slot.
    pub(crate) claimed: AtomicU64,
    /// Smallest era this thread may be reading (set at pin).
    pub(crate) lower: AtomicU64,
    /// Largest era this thread may be reading (raised by protected reads).
    pub(crate) upper: AtomicU64,
}

impl Reservation {
    fn empty() -> Self {
        Self {
            claimed: AtomicU64::new(0),
            lower: AtomicU64::new(RESERVATION_NONE_LOWER),
            upper: AtomicU64::new(RESERVATION_NONE_UPPER),
        }
    }

    /// Does `[birth, retire]` intersect this reservation?
    ///
    /// An empty reservation (`lower = MAX`, `upper = 0`) intersects nothing.
    #[inline]
    pub(crate) fn intersects(&self, birth: u64, retire: u64) -> bool {
        let lo = self.lower.load(SeqCst);
        let up = self.upper.load(SeqCst);
        birth <= up && retire >= lo
    }
}

/// A retired block awaiting reclamation: its header plus lifespan.
pub(crate) struct Retired {
    pub(crate) header: *mut Header,
    pub(crate) birth: u64,
    pub(crate) retire: u64,
}

// SAFETY: `Retired` is a plain record of an unlinked block; moving it
// between threads transfers the (unique) reclamation obligation.
unsafe impl Send for Retired {}

/// Counters exposed by [`Domain::stats`]. All values are cumulative since
/// domain creation and are approximate under concurrency (relaxed sums of
/// per-event increments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Blocks handed out by [`LocalHandle::alloc`].
    pub allocated: u64,
    /// Allocations served from the recycling pool rather than the OS.
    pub recycled: u64,
    /// Blocks retired and not yet reclaimed at the time of the snapshot.
    pub retired_pending: u64,
    /// Blocks whose payload has been dropped and memory recycled.
    pub reclaimed: u64,
    /// Blocks currently sitting in the recycling pool.
    pub pooled: u64,
    /// Current global era.
    pub era: u64,
}

pub(crate) struct DomainInner {
    pub(crate) era: AtomicU64,
    pub(crate) reservations: Box<[Reservation]>,
    pub(crate) pool: BlockPool,
    pub(crate) config: DomainConfig,
    /// Retired blocks inherited from dropped handles.
    pub(crate) orphans: Mutex<Vec<Retired>>,
    pub(crate) allocated: AtomicU64,
    pub(crate) recycled: AtomicU64,
    pub(crate) retired_pending: AtomicU64,
    pub(crate) reclaimed: AtomicU64,
}

// SAFETY: the raw pointers inside `orphans` are unlinked blocks owned by the
// domain; all shared mutation goes through atomics or the mutex.
unsafe impl Send for DomainInner {}
unsafe impl Sync for DomainInner {}

impl DomainInner {
    /// Is `[birth, retire]` disjoint from every active reservation?
    pub(crate) fn reclaimable(&self, birth: u64, retire: u64) -> bool {
        self.reservations.iter().all(|r| !r.intersects(birth, retire))
    }

    /// Drop the payload of a reclaimable block and recycle its memory.
    ///
    /// # Safety
    /// `r.header` must be an unlinked, retired block that no reservation
    /// protects and that no other thread will reclaim.
    pub(crate) unsafe fn reclaim_one(&self, r: Retired) {
        // SAFETY: per the function contract, we are the unique reclaimer.
        unsafe {
            ((*r.header).drop_fn)(r.header);
            self.pool.put(r.header);
        }
        self.retired_pending.fetch_sub(1, SeqCst);
        self.reclaimed.fetch_add(1, SeqCst);
    }

    /// Scan `list`, reclaiming every block no reservation protects.
    pub(crate) fn sweep(&self, list: &mut Vec<Retired>) {
        let mut i = 0;
        while i < list.len() {
            if self.reclaimable(list[i].birth, list[i].retire) {
                let r = list.swap_remove(i);
                // SAFETY: the scan above proved no reservation intersects,
                // and the block came off a (uniquely owned) retired list.
                unsafe { self.reclaim_one(r) };
            } else {
                i += 1;
            }
        }
    }
}

impl Drop for DomainInner {
    fn drop(&mut self) {
        // No handles can exist (they hold an Arc to us), hence no guards and
        // no readers: every orphaned block is reclaimable, and type-stability
        // ends now.
        let orphans = std::mem::take(&mut *self.orphans.lock().unwrap());
        for r in orphans {
            // SAFETY: teardown — unique access to everything.
            unsafe {
                ((*r.header).drop_fn)(r.header);
                let layout = (*r.header).layout;
                std::alloc::dealloc(r.header as *mut u8, layout);
            }
        }
        self.pool.dealloc_all();
    }
}

/// An IBR reclamation domain.
///
/// A `Domain` is a cheaply clonable handle to shared state (an `Arc`
/// internally). Threads participate by calling [`Domain::register`] to get a
/// [`LocalHandle`], through which they allocate, retire, and pin.
///
/// Dropping the last `Domain`/[`LocalHandle`] referencing the shared state
/// reclaims everything still outstanding.
#[derive(Clone)]
pub struct Domain {
    pub(crate) inner: Arc<DomainInner>,
}

impl Domain {
    /// Create a domain with default configuration.
    pub fn new() -> Self {
        Self::with_config(DomainConfig::default())
    }

    /// Create a domain with explicit tuning knobs.
    pub fn with_config(config: DomainConfig) -> Self {
        assert!(config.max_threads >= 1, "max_threads must be at least 1");
        assert!(config.era_frequency >= 1, "era_frequency must be at least 1");
        assert!(config.empty_frequency >= 1, "empty_frequency must be at least 1");
        let reservations = (0..config.max_threads).map(|_| Reservation::empty()).collect();
        Self {
            inner: Arc::new(DomainInner {
                era: AtomicU64::new(1),
                reservations,
                pool: BlockPool::new(),
                config,
                orphans: Mutex::new(Vec::new()),
                allocated: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                retired_pending: AtomicU64::new(0),
                reclaimed: AtomicU64::new(0),
            }),
        }
    }

    /// Register the calling thread, claiming a reservation slot.
    ///
    /// # Panics
    /// If all `max_threads` slots are taken.
    pub fn register(&self) -> LocalHandle {
        for (slot, r) in self.inner.reservations.iter().enumerate() {
            if r.claimed.compare_exchange(0, 1, SeqCst, SeqCst).is_ok() {
                return LocalHandle::new(self.clone(), slot);
            }
        }
        panic!(
            "qc-reclaim: all {} reservation slots are claimed — raise DomainConfig::max_threads",
            self.inner.config.max_threads
        );
    }

    /// The current global era.
    pub fn era(&self) -> u64 {
        self.inner.era.load(SeqCst)
    }

    /// Snapshot of the domain counters.
    pub fn stats(&self) -> DomainStats {
        DomainStats {
            allocated: self.inner.allocated.load(SeqCst),
            recycled: self.inner.recycled.load(SeqCst),
            retired_pending: self.inner.retired_pending.load(SeqCst),
            reclaimed: self.inner.reclaimed.load(SeqCst),
            pooled: self.inner.pool.len() as u64,
            era: self.inner.era.load(SeqCst),
        }
    }

    /// Reclaim whatever orphaned garbage is currently unprotected.
    ///
    /// Handles sweep their own retired lists automatically; this only
    /// touches blocks inherited from already-dropped handles. Useful in
    /// tests and long-lived processes that churn threads.
    pub fn reclaim_orphans(&self) {
        let mut orphans = self.inner.orphans.lock().unwrap();
        self.inner.sweep(&mut orphans);
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_domain_starts_at_era_one() {
        let d = Domain::new();
        assert_eq!(d.era(), 1);
        let s = d.stats();
        assert_eq!(s.allocated, 0);
        assert_eq!(s.retired_pending, 0);
    }

    #[test]
    fn register_claims_distinct_slots() {
        let d = Domain::with_config(DomainConfig { max_threads: 3, ..Default::default() });
        let h1 = d.register();
        let h2 = d.register();
        let h3 = d.register();
        assert_ne!(h1.slot(), h2.slot());
        assert_ne!(h2.slot(), h3.slot());
    }

    #[test]
    #[should_panic(expected = "reservation slots")]
    fn register_panics_when_slots_exhausted() {
        let d = Domain::with_config(DomainConfig { max_threads: 1, ..Default::default() });
        let _h1 = d.register();
        let _h2 = d.register();
    }

    #[test]
    fn dropping_handle_releases_slot_for_reuse() {
        let d = Domain::with_config(DomainConfig { max_threads: 1, ..Default::default() });
        let h1 = d.register();
        drop(h1);
        let _h2 = d.register(); // must not panic
    }

    #[test]
    fn empty_reservation_intersects_nothing() {
        let r = Reservation::empty();
        assert!(!r.intersects(0, u64::MAX - 1));
        assert!(!r.intersects(5, 5));
    }

    #[test]
    fn active_reservation_interval_logic() {
        let r = Reservation::empty();
        r.lower.store(10, SeqCst);
        r.upper.store(20, SeqCst);
        assert!(r.intersects(10, 10));
        assert!(r.intersects(20, 25));
        assert!(r.intersects(5, 10));
        assert!(r.intersects(0, 100));
        assert!(!r.intersects(0, 9));
        assert!(!r.intersects(21, 30));
    }

    #[test]
    fn domain_is_cloneable_and_shares_state() {
        let d1 = Domain::new();
        let d2 = d1.clone();
        let h = d1.register();
        let x = h.alloc(7u64);
        assert!(d2.stats().allocated >= 1);
        unsafe { h.retire(x) };
    }
}
