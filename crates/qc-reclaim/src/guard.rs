//! Reservation guards: era-validated protected reads.

use std::sync::atomic::Ordering::SeqCst;

use crate::handle::LocalHandle;

/// An active reservation.
///
/// While a `Guard` lives, the owning thread's reservation interval
/// `[lower, upper]` is published: any block whose lifespan intersects it
/// will not be reclaimed. [`Guard::protect`] performs the 2GE-IBR read
/// protocol, raising `upper` as the global era advances so that every value
/// it returns was loaded at an era the reservation covers.
pub struct Guard<'a> {
    handle: &'a LocalHandle,
}

impl<'a> Guard<'a> {
    pub(crate) fn new(handle: &'a LocalHandle) -> Self {
        Self { handle }
    }

    /// The handle this guard pins.
    pub fn handle(&self) -> &'a LocalHandle {
        self.handle
    }

    /// Era-validated read of a shared word (IBR's `read`).
    ///
    /// `load` is re-invoked until one execution is bracketed by two equal
    /// reads of the global era `e`, with `upper ≥ e` published beforehand.
    /// The returned raw value was therefore loaded while the reservation
    /// covered the then-current era, which yields the key IBR guarantee:
    ///
    /// > If the returned value is the address of a block that was reachable
    /// > at load time, that block's lifespan `[birth, retire]` contains the
    /// > load era, which lies inside this thread's reservation — so the
    /// > block cannot be reclaimed until the guard drops.
    ///
    /// `load` must be a plain atomic load of one shared word (it may be
    /// re-executed many times and must not have side effects).
    #[inline]
    pub fn protect(&self, mut load: impl FnMut() -> u64) -> u64 {
        let domain = self.handle.domain();
        let reservation = self.handle.reservation();
        let mut prev = reservation.upper.load(SeqCst);
        loop {
            let raw = load();
            let era = domain.inner.era.load(SeqCst);
            if era == prev {
                return raw;
            }
            // Raise the published upper bound to the current era, then try
            // again. `upper` is monotone within a pin, so raising it never
            // un-protects anything already read.
            reservation.upper.store(era, SeqCst);
            prev = era;
        }
    }

    /// The reservation interval currently published by this guard,
    /// `(lower, upper)`. Exposed for tests and debugging.
    pub fn reservation_interval(&self) -> (u64, u64) {
        let r = self.handle.reservation();
        (r.lower.load(SeqCst), r.upper.load(SeqCst))
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.handle.unpin();
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, up) = self.reservation_interval();
        f.debug_struct("Guard").field("lower", &lo).field("upper", &up).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, DomainConfig};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pin_publishes_current_era() {
        let d = Domain::new();
        let h = d.register();
        let era = d.era();
        let g = h.pin();
        assert_eq!(g.reservation_interval(), (era, era));
    }

    #[test]
    fn protect_returns_loaded_value_when_era_stable() {
        let d = Domain::new();
        let h = d.register();
        let word = AtomicU64::new(42);
        let g = h.pin();
        assert_eq!(g.protect(|| word.load(SeqCst)), 42);
    }

    #[test]
    fn protect_raises_upper_when_era_advances() {
        let d = Domain::with_config(DomainConfig { era_frequency: 1, ..Default::default() });
        let h = d.register();
        let g = h.pin();
        let (lo, up0) = g.reservation_interval();

        // Advance the era by allocating (era_frequency = 1).
        let other = d.register();
        let block = other.alloc(0u64);
        assert!(d.era() > up0);

        let word = AtomicU64::new(7);
        let v = g.protect(|| word.load(SeqCst));
        assert_eq!(v, 7);
        let (lo2, up2) = g.reservation_interval();
        assert_eq!(lo, lo2, "lower bound is fixed at pin time");
        assert_eq!(up2, d.era(), "upper raised to current era");

        unsafe { other.retire(block) };
    }

    #[test]
    fn guard_drop_withdraws_reservation() {
        let d = Domain::new();
        let h = d.register();
        let g = h.pin();
        drop(g);
        let r = h.reservation();
        assert_eq!(r.lower.load(SeqCst), u64::MAX);
        assert_eq!(r.upper.load(SeqCst), 0);
    }

    /// End-to-end: a protected load of a shared word keeps the addressed
    /// block alive even when the writer retires it concurrently.
    #[test]
    fn protected_pointer_survives_retirement() {
        let d = Domain::with_config(DomainConfig {
            era_frequency: 1,
            empty_frequency: 1,
            ..Default::default()
        });
        let writer = d.register();
        let reader = d.register();

        let block = writer.alloc(vec![1u64, 2, 3]);
        let word = AtomicU64::new(block.into_raw());

        let g = reader.pin();
        let raw = g.protect(|| word.load(SeqCst));
        let seen = unsafe { crate::Shared::<Vec<u64>>::from_raw(raw) };

        // Writer unlinks and retires; sweep runs (empty_frequency = 1) but
        // must not reclaim: the reader's reservation covers the load era.
        let old = unsafe { crate::Shared::<Vec<u64>>::from_raw(word.swap(0, SeqCst)) };
        unsafe { writer.retire(old) };
        assert_eq!(unsafe { seen.deref() }.as_slice(), &[1, 2, 3]);

        drop(g);
        writer.try_reclaim();
        assert_eq!(writer.retired_pending(), 0);
    }
}
