//! Per-thread participation handle: allocation, retirement, pinning.

use std::cell::{Cell, RefCell};
use std::sync::atomic::Ordering::SeqCst;

use crate::block::{drop_block_payload, Block, Header, Shared, NOT_RETIRED};
use crate::domain::{Domain, Retired, RESERVATION_NONE_LOWER, RESERVATION_NONE_UPPER};
use crate::guard::Guard;

/// A thread's registration in a [`Domain`].
///
/// The handle owns one reservation slot and a private list of retired
/// blocks. It is `Send` (create it anywhere, move it into the worker thread)
/// but deliberately not `Sync`: all of its methods take `&self` with
/// single-thread interior mutability.
pub struct LocalHandle {
    domain: Domain,
    slot: usize,
    retired: RefCell<Vec<Retired>>,
    alloc_ticks: Cell<usize>,
    retire_ticks: Cell<usize>,
    pin_depth: Cell<usize>,
}

// SAFETY: `LocalHandle` is a thread-affine facade over the (Sync) domain;
// the RefCell/Cell state is only touched through `&self` on one thread at a
// time, which moving the handle preserves.
unsafe impl Send for LocalHandle {}

impl LocalHandle {
    pub(crate) fn new(domain: Domain, slot: usize) -> Self {
        Self {
            domain,
            slot,
            retired: RefCell::new(Vec::new()),
            alloc_ticks: Cell::new(0),
            retire_ticks: Cell::new(0),
            pin_depth: Cell::new(0),
        }
    }

    /// The domain this handle participates in.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The reservation slot index (stable for the handle's lifetime).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Allocate a tracked block holding `value`.
    ///
    /// The block's birth era is stamped before the pointer is returned, so
    /// publishing it through an atomic word afterwards is always covered.
    /// Memory is recycled from the domain pool when a block of the same
    /// layout is available.
    pub fn alloc<T: Send>(&self, value: T) -> Shared<T> {
        let inner = &self.domain.inner;
        let ticks = self.alloc_ticks.get() + 1;
        self.alloc_ticks.set(ticks);
        if ticks.is_multiple_of(inner.config.era_frequency) {
            inner.era.fetch_add(1, SeqCst);
        }
        inner.allocated.fetch_add(1, SeqCst);

        let layout = Block::<T>::layout();
        let recycled = inner.pool.take(layout);
        let block: *mut Block<T> = match recycled {
            Some(h) => {
                inner.recycled.fetch_add(1, SeqCst);
                h as *mut Block<T>
            }
            None => {
                // SAFETY: `layout` has nonzero size (header is nonzero).
                let raw = unsafe { std::alloc::alloc(layout) };
                if raw.is_null() {
                    std::alloc::handle_alloc_error(layout);
                }
                raw as *mut Block<T>
            }
        };

        let birth = inner.era.load(SeqCst);
        // SAFETY: `block` is uniquely ours. For a recycled block the header
        // atomics are live (type-stable memory), so the eras are stored
        // through them; `drop_fn`/`layout` are plain fields no concurrent
        // reader inspects (readers only ever load eras).
        unsafe {
            if recycled.is_some() {
                let h = block as *mut Header;
                (*h).birth_era.store(birth, SeqCst);
                (*h).retire_era.store(NOT_RETIRED, SeqCst);
                (*h).drop_fn = drop_block_payload::<T>;
                debug_assert_eq!((*h).layout, layout);
                std::ptr::write(std::ptr::addr_of_mut!((*block).value), value);
            } else {
                std::ptr::write(
                    block,
                    Block {
                        header: Header {
                            birth_era: std::sync::atomic::AtomicU64::new(birth),
                            retire_era: std::sync::atomic::AtomicU64::new(NOT_RETIRED),
                            drop_fn: drop_block_payload::<T>,
                            layout,
                        },
                        value,
                    },
                );
            }
        }
        Shared::from_block(block)
    }

    /// Retire an unlinked block: its payload will be dropped and its memory
    /// recycled once no reservation can still be reading it.
    ///
    /// # Safety
    /// `shared` must be non-null, must have been produced by [`alloc`] on
    /// this domain, must already be unreachable from every shared word, and
    /// must be retired exactly once.
    ///
    /// [`alloc`]: LocalHandle::alloc
    pub unsafe fn retire<T>(&self, shared: Shared<T>) {
        debug_assert!(!shared.is_null(), "retiring the null token");
        let inner = &self.domain.inner;
        let header = shared.header();
        let retire = inner.era.load(SeqCst);
        // SAFETY: header of a block from this domain; we own the retirement.
        let birth = unsafe { (*header).birth_era.load(SeqCst) };
        unsafe { (*header).retire_era.store(retire, SeqCst) };
        inner.retired_pending.fetch_add(1, SeqCst);
        self.retired.borrow_mut().push(Retired { header, birth, retire });

        let ticks = self.retire_ticks.get() + 1;
        self.retire_ticks.set(ticks);
        if ticks.is_multiple_of(inner.config.empty_frequency) {
            self.try_reclaim();
        }
    }

    /// Sweep this handle's retired list (and any orphans, opportunistically),
    /// reclaiming every block no reservation protects. Called automatically
    /// every `empty_frequency` retires.
    pub fn try_reclaim(&self) {
        let inner = &self.domain.inner;
        inner.sweep(&mut self.retired.borrow_mut());
        if let Ok(mut orphans) = inner.orphans.try_lock() {
            inner.sweep(&mut orphans);
        }
    }

    /// Number of blocks this handle has retired but not yet reclaimed.
    pub fn retired_pending(&self) -> usize {
        self.retired.borrow().len()
    }

    /// Pin the thread: publish a reservation covering the current era and
    /// return a [`Guard`] whose protected reads keep it raised.
    ///
    /// Pins nest; the reservation is published by the outermost pin and
    /// withdrawn when the outermost guard drops.
    pub fn pin(&self) -> Guard<'_> {
        let depth = self.pin_depth.get();
        self.pin_depth.set(depth + 1);
        if depth == 0 {
            let inner = &self.domain.inner;
            let era = inner.era.load(SeqCst);
            let r = &inner.reservations[self.slot];
            r.lower.store(era, SeqCst);
            r.upper.store(era, SeqCst);
        }
        Guard::new(self)
    }

    pub(crate) fn unpin(&self) {
        let depth = self.pin_depth.get();
        debug_assert!(depth > 0, "unpin without pin");
        self.pin_depth.set(depth - 1);
        if depth == 1 {
            let r = &self.domain.inner.reservations[self.slot];
            r.lower.store(RESERVATION_NONE_LOWER, SeqCst);
            r.upper.store(RESERVATION_NONE_UPPER, SeqCst);
        }
    }

    pub(crate) fn reservation(&self) -> &crate::domain::Reservation {
        &self.domain.inner.reservations[self.slot]
    }

    /// Is the thread currently pinned?
    pub fn is_pinned(&self) -> bool {
        self.pin_depth.get() > 0
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        debug_assert_eq!(self.pin_depth.get(), 0, "handle dropped while pinned");
        // One last sweep with our reservation already irrelevant, then hand
        // the stragglers to the domain.
        self.try_reclaim();
        let leftovers = std::mem::take(&mut *self.retired.borrow_mut());
        if !leftovers.is_empty() {
            self.domain.inner.orphans.lock().unwrap().extend(leftovers);
        }
        let r = &self.domain.inner.reservations[self.slot];
        r.lower.store(RESERVATION_NONE_LOWER, SeqCst);
        r.upper.store(RESERVATION_NONE_UPPER, SeqCst);
        r.claimed.store(0, SeqCst);
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("slot", &self.slot)
            .field("retired_pending", &self.retired_pending())
            .field("pinned", &self.is_pinned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainConfig;

    #[test]
    fn alloc_stamps_birth_era() {
        let d = Domain::new();
        let h = d.register();
        let s = h.alloc(123u64);
        assert!(s.birth_era() >= 1);
        assert_eq!(unsafe { *s.deref() }, 123);
        unsafe { h.retire(s) };
    }

    #[test]
    fn era_advances_with_allocation_frequency() {
        let d = Domain::with_config(DomainConfig { era_frequency: 4, ..Default::default() });
        let h = d.register();
        let e0 = d.era();
        let mut blocks = Vec::new();
        for i in 0..16u64 {
            blocks.push(h.alloc(i));
        }
        assert_eq!(d.era(), e0 + 4);
        for b in blocks {
            unsafe { h.retire(b) };
        }
    }

    #[test]
    fn unprotected_retire_reclaims_and_recycles() {
        let d = Domain::with_config(DomainConfig { empty_frequency: 1, ..Default::default() });
        let h = d.register();
        let a = h.alloc(vec![1u64, 2, 3]);
        unsafe { h.retire(a) };
        assert_eq!(h.retired_pending(), 0, "nothing protects the block");
        let stats = d.stats();
        assert_eq!(stats.reclaimed, 1);
        // Next allocation of the same layout reuses the block.
        let b = h.alloc(vec![9u64]);
        assert_eq!(d.stats().recycled, 1);
        unsafe { h.retire(b) };
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let d = Domain::with_config(DomainConfig { empty_frequency: 1, ..Default::default() });
        let writer = d.register();
        let reader = d.register();

        let guard = reader.pin();
        let a = writer.alloc(7u64);
        // The reader's reservation [e, e] with the block's lifespan [e, e']
        // intersects, so the block must survive the sweep.
        unsafe { writer.retire(a) };
        assert_eq!(writer.retired_pending(), 1, "guard must protect the block");
        assert_eq!(unsafe { *a.deref() }, 7);

        drop(guard);
        writer.try_reclaim();
        assert_eq!(writer.retired_pending(), 0);
    }

    #[test]
    fn nested_pins_keep_reservation_until_outermost_drop() {
        let d = Domain::new();
        let h = d.register();
        let g1 = h.pin();
        let g2 = h.pin();
        assert!(h.is_pinned());
        drop(g1);
        assert!(h.is_pinned(), "inner pin still active");
        drop(g2);
        assert!(!h.is_pinned());
    }

    #[test]
    fn dropped_handle_orphans_then_domain_reclaims() {
        let d = Domain::with_config(DomainConfig { empty_frequency: 1000, ..Default::default() });
        let blocker = d.register();
        let guard = blocker.pin();

        let h = d.register();
        let a = h.alloc(1u64);
        unsafe { h.retire(a) };
        drop(h); // retired block is protected by `guard`, goes to orphans

        drop(guard);
        d.reclaim_orphans();
        assert_eq!(d.stats().retired_pending, 0);
    }

    #[test]
    fn drop_glue_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tally(#[allow(dead_code)] u64);
        impl Drop for Tally {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let d = Domain::with_config(DomainConfig { empty_frequency: 1, ..Default::default() });
        let h = d.register();
        let a = h.alloc(Tally(5));
        unsafe { h.retire(a) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(h);
        drop(d);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "no double drop at teardown");
    }

    #[test]
    fn unretired_blocks_leak_by_design_but_domain_teardown_is_clean() {
        // Blocks never retired are the caller's responsibility (they are
        // still "linked" as far as the domain knows). This test just checks
        // teardown with retired-but-protected orphans does not crash.
        let d = Domain::new();
        let h = d.register();
        let a = h.alloc(vec![0u8; 64]);
        unsafe { h.retire(a) };
        drop(h);
        drop(d);
    }
}
