//! Tracked block layout: a header (eras + drop glue) followed by the payload.

use std::alloc::Layout;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Era value meaning "not yet retired".
pub(crate) const NOT_RETIRED: u64 = u64::MAX;

/// Header prepended to every tracked allocation.
///
/// `birth_era` / `retire_era` are atomics because IBR readers inspect the
/// header of blocks they have not yet validated — a recycled block's header
/// may be written concurrently by the allocating thread, and that race must
/// be a benign stale read rather than UB.
#[repr(C)]
pub(crate) struct Header {
    pub(crate) birth_era: AtomicU64,
    pub(crate) retire_era: AtomicU64,
    /// Drops the payload in place. Rewritten on every (re)allocation because
    /// the pool recycles blocks across payload types of identical layout.
    pub(crate) drop_fn: unsafe fn(*mut Header),
    /// Layout of the whole block (header + payload), used by the pool and
    /// the final deallocation at domain teardown.
    pub(crate) layout: Layout,
}

/// A block: header followed by payload, `repr(C)` so the block address and
/// the header address coincide.
#[repr(C)]
pub(crate) struct Block<T> {
    pub(crate) header: Header,
    pub(crate) value: T,
}

impl<T> Block<T> {
    pub(crate) fn layout() -> Layout {
        Layout::new::<Block<T>>()
    }
}

/// Monomorphized payload-drop glue stored in each header.
pub(crate) unsafe fn drop_block_payload<T>(h: *mut Header) {
    let block = h as *mut Block<T>;
    // SAFETY: caller guarantees the block currently holds a live `T` and
    // nobody else will access it again.
    unsafe { std::ptr::drop_in_place(std::ptr::addr_of_mut!((*block).value)) };
}

/// A copyable token for a tracked, shared allocation of `T`.
///
/// `Shared` is just a tagged raw pointer: it implements `Copy` and can be
/// stowed in an `AtomicU64` via [`Shared::into_raw`] / [`Shared::from_raw`].
/// All dereferencing is `unsafe` and must happen either under a validated
/// [`crate::Guard`] or with exclusive structural access (e.g. the thread
/// that owns a level during propagation).
pub struct Shared<T> {
    ptr: *mut Block<T>,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

// SAFETY: `Shared` is a pointer-sized token; the safety obligations are on
// the unsafe dereference sites, not on moving the token between threads.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> Shared<T> {
    pub(crate) fn from_block(ptr: *mut Block<T>) -> Self {
        Self { ptr, _marker: PhantomData }
    }

    pub(crate) fn header(self) -> *mut Header {
        self.ptr as *mut Header
    }

    /// The block address as a raw `u64` (non-zero, 8-byte aligned), suitable
    /// for storage in an atomic word. The null pointer maps to 0.
    pub fn into_raw(self) -> u64 {
        self.ptr as u64
    }

    /// Rebuild a token from [`Shared::into_raw`] output.
    ///
    /// # Safety
    /// `raw` must be 0 or a value previously produced by `into_raw` on a
    /// block of the same payload type `T` (from any domain).
    pub unsafe fn from_raw(raw: u64) -> Self {
        Self { ptr: raw as *mut Block<T>, _marker: PhantomData }
    }

    /// Is this the null token?
    pub fn is_null(self) -> bool {
        self.ptr.is_null()
    }

    /// The null token (raw value 0).
    pub fn null() -> Self {
        Self { ptr: std::ptr::null_mut(), _marker: PhantomData }
    }

    /// Header address of a raw word value, for [`crate::Guard::protect`]'s
    /// decode closure. Returns `None` for 0 (no protection needed).
    pub fn header_of_raw(raw: u64) -> Option<*mut ()> {
        if raw == 0 {
            None
        } else {
            Some(raw as *mut ())
        }
    }

    /// Read the payload.
    ///
    /// # Safety
    /// The token must be non-null and the block must be protected by a
    /// validated guard of its domain (or be structurally private to the
    /// caller), and must not have been retired-and-reclaimed.
    pub unsafe fn deref<'a>(self) -> &'a T {
        debug_assert!(!self.ptr.is_null());
        // SAFETY: per the function contract.
        unsafe { &(*self.ptr).value }
    }

    /// Mutable access to the payload.
    ///
    /// # Safety
    /// As [`Shared::deref`], plus the caller must be the unique accessor.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn deref_mut<'a>(self) -> &'a mut T {
        debug_assert!(!self.ptr.is_null());
        // SAFETY: per the function contract.
        unsafe { &mut (*self.ptr).value }
    }

    /// Birth era stamped at allocation.
    pub fn birth_era(self) -> u64 {
        debug_assert!(!self.ptr.is_null());
        // SAFETY: header is always readable for live-or-pooled blocks of a
        // live domain (type-stable memory).
        unsafe { (*self.header()).birth_era.load(Ordering::Acquire) }
    }
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}
impl<T> Eq for Shared<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_at_block_start() {
        // repr(C) guarantees this; the pool and the reader protocol rely on it.
        assert_eq!(std::mem::offset_of!(Block<u64>, header), 0);
    }

    #[test]
    fn block_alignment_leaves_low_bits_free() {
        // MWCAS tags live in the low 2 bits of word values; block addresses
        // must therefore be at least 8-byte aligned.
        assert!(Block::<u8>::layout().align() >= 8);
        assert!(Block::<Vec<u64>>::layout().align() >= 8);
    }

    #[test]
    fn null_token_roundtrip() {
        let n = Shared::<String>::null();
        assert!(n.is_null());
        assert_eq!(n.into_raw(), 0);
        let back = unsafe { Shared::<String>::from_raw(0) };
        assert!(back.is_null());
    }

    #[test]
    fn header_of_raw_filters_null() {
        assert!(Shared::<u64>::header_of_raw(0).is_none());
        assert!(Shared::<u64>::header_of_raw(8).is_some());
    }
}
