//! Multi-threaded stress tests for the IBR domain.
//!
//! These exercise the safety property the sketch relies on: a value read
//! through `Guard::protect` stays dereferenceable for the guard's lifetime,
//! no matter how aggressively writers retire and the domain recycles.

use qc_reclaim::{Domain, DomainConfig, Shared};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Barrier;

/// A payload with a self-check: `a` and `b` must always agree. A use-after-
/// free that hands the block to a concurrent re-allocation would be caught
/// by the checksum with high probability.
struct Checked {
    a: u64,
    b: u64,
}

impl Checked {
    fn new(v: u64) -> Self {
        Self { a: v, b: v ^ 0xDEAD_BEEF_F00D_CAFE }
    }
    fn verify(&self) -> bool {
        self.a == self.b ^ 0xDEAD_BEEF_F00D_CAFE
    }
}

#[test]
fn readers_never_observe_reclaimed_payloads() {
    const READERS: usize = 4;
    const WRITES: u64 = 20_000;

    let domain = Domain::with_config(DomainConfig {
        era_frequency: 4,
        empty_frequency: 4,
        ..Default::default()
    });
    let word = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(READERS + 1);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let handle = domain.register();
                barrier.wait();
                let mut reads = 0u64;
                while !stop.load(SeqCst) {
                    let guard = handle.pin();
                    let raw = guard.protect(|| word.load(SeqCst));
                    if raw != 0 {
                        let shared = unsafe { Shared::<Checked>::from_raw(raw) };
                        let payload = unsafe { shared.deref() };
                        assert!(payload.verify(), "torn or reclaimed payload observed");
                        reads += 1;
                    }
                    drop(guard);
                }
                assert!(reads > 0, "reader made no successful reads");
            });
        }

        s.spawn(|| {
            let handle = domain.register();
            barrier.wait();
            for i in 1..=WRITES {
                let fresh = handle.alloc(Checked::new(i));
                let old = word.swap(fresh.into_raw(), SeqCst);
                if old != 0 {
                    let old = unsafe { Shared::<Checked>::from_raw(old) };
                    unsafe { handle.retire(old) };
                }
            }
            stop.store(true, SeqCst);
            // Unlink the final block so teardown accounting is exact.
            let last = word.swap(0, SeqCst);
            if last != 0 {
                unsafe { handle.retire(Shared::<Checked>::from_raw(last)) };
            }
        });
    });

    // All guards are gone: everything retired must now be reclaimable.
    domain.reclaim_orphans();
    let stats = domain.stats();
    assert_eq!(stats.retired_pending, 0, "stats: {stats:?}");
    assert_eq!(stats.allocated, WRITES);
    assert_eq!(stats.reclaimed, WRITES);
}

#[test]
fn recycling_actually_happens_under_churn() {
    let domain = Domain::with_config(DomainConfig {
        era_frequency: 2,
        empty_frequency: 2,
        ..Default::default()
    });
    let handle = domain.register();
    for i in 0..10_000u64 {
        let b = handle.alloc([i; 8]);
        unsafe { handle.retire(b) };
    }
    let stats = domain.stats();
    assert!(
        stats.recycled > 9_000,
        "unprotected churn should recycle nearly every block: {stats:?}"
    );
    assert!(stats.pooled <= 16, "pool should stay near-empty: {stats:?}");
}

#[test]
fn many_threads_allocate_and_retire_disjoint_blocks() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;

    let domain = Domain::with_config(DomainConfig {
        era_frequency: 8,
        empty_frequency: 8,
        ..Default::default()
    });

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let domain = domain.clone();
            s.spawn(move || {
                let handle = domain.register();
                for i in 0..PER_THREAD {
                    let b = handle.alloc(vec![t as u64, i]);
                    assert_eq!(unsafe { b.deref() }[1], i);
                    unsafe { handle.retire(b) };
                }
            });
        }
    });

    domain.reclaim_orphans();
    let stats = domain.stats();
    assert_eq!(stats.allocated, THREADS as u64 * PER_THREAD);
    assert_eq!(stats.retired_pending, 0);
    assert_eq!(stats.reclaimed, stats.allocated);
}

/// Guards taken while an era is in flight must still protect: hammer the
/// protect path while another thread advances the era as fast as it can.
#[test]
fn protect_is_robust_to_rapid_era_advance() {
    let domain = Domain::with_config(DomainConfig {
        era_frequency: 1, // every allocation bumps the era
        empty_frequency: 1,
        ..Default::default()
    });
    let word = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| {
            let handle = domain.register();
            while !stop.load(SeqCst) {
                let fresh = handle.alloc(Checked::new(1));
                let old = word.swap(fresh.into_raw(), SeqCst);
                if old != 0 {
                    unsafe { handle.retire(Shared::<Checked>::from_raw(old)) };
                }
            }
            let last = word.swap(0, SeqCst);
            if last != 0 {
                unsafe { handle.retire(Shared::<Checked>::from_raw(last)) };
            }
        });

        let handle = domain.register();
        for _ in 0..30_000 {
            let guard = handle.pin();
            let raw = guard.protect(|| word.load(SeqCst));
            if raw != 0 {
                let shared = unsafe { Shared::<Checked>::from_raw(raw) };
                assert!(unsafe { shared.deref() }.verify());
            }
        }
        stop.store(true, SeqCst);
    });
}
