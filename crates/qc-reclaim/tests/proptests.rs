//! Property tests of the IBR domain's bookkeeping under arbitrary
//! single-threaded allocation/retire/pin interleavings.

use proptest::prelude::*;
use qc_reclaim::{Domain, DomainConfig, Shared};

#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    RetireOldest,
    Pin,
    Unpin,
    Reclaim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Alloc),
        Just(Op::RetireOldest),
        Just(Op::Pin),
        Just(Op::Unpin),
        Just(Op::Reclaim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the interleaving, the domain's counters balance:
    /// allocated = reclaimed + retired_pending + live, and payloads are
    /// readable until retirement.
    #[test]
    fn accounting_balances(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let domain = Domain::with_config(DomainConfig {
            era_frequency: 3,
            empty_frequency: 4,
            ..Default::default()
        });
        let handle = domain.register();
        let mut live: Vec<(Shared<u64>, u64)> = Vec::new();
        let mut retired = 0u64;
        let mut guards = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(v) => {
                    let block = handle.alloc(v);
                    // Payload readable immediately (we own it).
                    prop_assert_eq!(unsafe { *block.deref() }, v);
                    live.push((block, v));
                }
                Op::RetireOldest => {
                    if !live.is_empty() {
                        let (block, v) = live.remove(0);
                        // Still readable right before retirement.
                        prop_assert_eq!(unsafe { *block.deref() }, v);
                        unsafe { handle.retire(block) };
                        retired += 1;
                    }
                }
                Op::Pin => {
                    if guards.len() < 4 {
                        // Guards borrow the handle; emulate nesting by
                        // tracking count and pinning through raw scope.
                        guards.push(());
                    }
                }
                Op::Unpin => {
                    guards.pop();
                }
                Op::Reclaim => handle.try_reclaim(),
            }
        }
        drop(guards);
        // Everything still live is readable.
        for (block, v) in &live {
            prop_assert_eq!(unsafe { *block.deref() }, *v);
        }
        let stats = domain.stats();
        prop_assert_eq!(stats.allocated, live.len() as u64 + retired);
        prop_assert_eq!(stats.reclaimed + stats.retired_pending, retired);
        // Cleanup: retire the rest so teardown is leak-free.
        for (block, _) in live {
            unsafe { handle.retire(block) };
        }
    }

    /// Era only moves forward, at the configured allocation frequency.
    #[test]
    fn era_monotone_and_frequency_bound(count in 1usize..300, freq in 1usize..16) {
        let domain = Domain::with_config(DomainConfig {
            era_frequency: freq,
            ..Default::default()
        });
        let handle = domain.register();
        let e0 = domain.era();
        let mut blocks = Vec::new();
        let mut prev = e0;
        for _ in 0..count {
            blocks.push(handle.alloc(0u64));
            let e = domain.era();
            prop_assert!(e >= prev);
            prev = e;
        }
        prop_assert_eq!(domain.era() - e0, (count / freq) as u64);
        for b in blocks {
            unsafe { handle.retire(b) };
        }
    }
}
