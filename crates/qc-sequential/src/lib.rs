//! The sequential Quantiles sketch of Agarwal et al. (*Mergeable
//! Summaries*, PODS'12) — the algorithm Quancurrent parallelizes and the
//! single-threaded baseline of every comparison in the paper's evaluation.
//!
//! A sketch with parameter `k` summarizes a stream of `n` elements in
//! `O(k log(n/k))` space and answers φ-quantile queries with normalized
//! rank error ≈ `1.76 / k^0.93` (the DataSketches classic-sketch fit; see
//! [`qc_common::error`]).
//!
//! * [`QuantilesSketch`] — the core, operating on 64-bit ordered keys.
//! * [`Sketch`] — typed wrapper over any [`qc_common::OrderedBits`] type.
//! * [`SketchBuilder`] — choose `k` directly or from a target error.
//!
//! ```
//! use qc_sequential::Sketch;
//!
//! let mut sketch = Sketch::<u64>::new(256);
//! for x in 0..1_000_000u64 {
//!     sketch.update(x);
//! }
//! let p99 = sketch.quantile(0.99).unwrap();
//! assert!((980_000..=1_000_000).contains(&p99));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_code)]

mod builder;
mod sketch;
mod typed;

pub use builder::SketchBuilder;
pub use sketch::QuantilesSketch;
pub use typed::Sketch;
