//! Typed front-end over the bit-space sketch, and the engine-trait
//! implementations that make [`Sketch`] a drop-in backend for everything
//! programmed against [`qc_common::engine`].

use qc_common::bits::OrderedBits;
use qc_common::engine::{
    InstrumentedSketch, MergeableSketch, QuantileEstimator, SharedIngest, StreamIngest,
    VersionedSketch,
};
use qc_common::summary::{Summary, WeightedSummary};

use crate::sketch::QuantilesSketch;

/// A sequential Quantiles sketch over any [`OrderedBits`] element type.
///
/// # Example
///
/// ```
/// use qc_sequential::Sketch;
///
/// let mut sketch = Sketch::<f64>::new(128);
/// for i in 0..100_000 {
///     sketch.update(i as f64 / 100_000.0);
/// }
/// let median = sketch.quantile(0.5).unwrap();
/// assert!((median - 0.5).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct Sketch<T: OrderedBits> {
    inner: QuantilesSketch,
    _marker: std::marker::PhantomData<T>,
}

impl<T: OrderedBits> Sketch<T> {
    /// Create a sketch with level size `k`.
    pub fn new(k: usize) -> Self {
        Self { inner: QuantilesSketch::new(k), _marker: std::marker::PhantomData }
    }

    /// Create a sketch with an explicit seed (reproducible sampling).
    pub fn with_seed(k: usize, seed: u64) -> Self {
        Self { inner: QuantilesSketch::with_seed(k, seed), _marker: std::marker::PhantomData }
    }

    /// Process one stream element.
    #[inline]
    pub fn update(&mut self, x: T) {
        self.inner.update(x.to_ordered_bits());
    }

    /// Estimate the φ-quantile of the stream so far.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.inner.quantile_bits(phi).map(T::from_ordered_bits)
    }

    /// Estimated CDF at the given split points.
    pub fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.inner.summary().cdf_bits(&bits)
    }

    /// Estimated histogram over ascending `splits` (see
    /// [`qc_common::Summary::histogram_bits`]).
    pub fn histogram(&self, splits: &[T]) -> Vec<u64> {
        let bits: Vec<u64> = splits.iter().map(|x| x.to_ordered_bits()).collect();
        self.inner.summary().histogram_bits(&bits)
    }

    /// Build a reusable weighted summary (for batch queries).
    pub fn summary(&self) -> WeightedSummary {
        self.inner.summary()
    }

    /// Merge another sketch of the same `k` into this one.
    pub fn merge_from(&mut self, other: &Sketch<T>) {
        self.inner.merge_from(&other.inner);
    }

    /// Stream length so far.
    pub fn n(&self) -> u64 {
        self.inner.n()
    }

    /// Level size parameter.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Retained elements (space usage).
    pub fn num_retained(&self) -> usize {
        self.inner.num_retained()
    }

    /// Rank error bound ε(k).
    pub fn epsilon(&self) -> f64 {
        self.inner.epsilon()
    }

    /// Smallest element retained (exact: the minimum always survives
    /// sampling into *some* level or the base buffer with probability
    /// depending on compaction; this is the smallest *retained* element).
    pub fn min_retained(&self) -> Option<T> {
        self.inner.summary().min_bits().map(T::from_ordered_bits)
    }

    /// Largest retained element.
    pub fn max_retained(&self) -> Option<T> {
        self.inner.summary().max_bits().map(T::from_ordered_bits)
    }

    /// Confidence bracket for the φ-quantile: the estimates at
    /// `φ − ε(k)` and `φ + ε(k)`. With probability ≥ 1 − δ the true
    /// φ-quantile's value lies within this bracket (the PAC guarantee of
    /// §2.1 read off the summary itself).
    pub fn quantile_bounds(&self, phi: f64) -> Option<(T, T)> {
        let eps = self.epsilon();
        let summary = self.inner.summary();
        let lo = summary.quantile_bits((phi - eps).max(0.0))?;
        let hi = summary.quantile_bits((phi + eps).min(1.0))?;
        Some((T::from_ordered_bits(lo), T::from_ordered_bits(hi)))
    }

    /// Access the untyped core (for harness code operating in bit space).
    pub fn as_bits(&self) -> &QuantilesSketch {
        &self.inner
    }

    /// Mutable access to the untyped core.
    pub fn as_bits_mut(&mut self) -> &mut QuantilesSketch {
        &mut self.inner
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for Sketch<T> {
    fn stream_len(&self) -> u64 {
        self.inner.n()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.inner.quantile_bits(phi).map(T::from_ordered_bits)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.inner.rank_bits(x.to_ordered_bits())
    }

    /// Overridden to build one summary for all split points.
    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.inner.summary().cdf_bits(&bits)
    }

    /// Overridden to build one summary for all φ values.
    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        let summary = self.inner.summary();
        phis.iter().map(|&phi| summary.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    fn error_bound(&self) -> f64 {
        self.inner.epsilon()
    }
}

impl<T: OrderedBits> StreamIngest<T> for Sketch<T> {
    fn update(&mut self, x: T) {
        self.inner.update(x.to_ordered_bits());
    }

    // `update_many` keeps the trait default; `flush` is the default
    // no-op: every update is immediately visible.
}

/// Single-writer by nature: the sequential sketch declines shared-access
/// leases (the trait default, `try_writer` → `None`), which is what tells
/// a keyed store to keep cold keys on the exclusive-lock write path that
/// also drives tier promotion.
impl<T: OrderedBits> SharedIngest<T> for Sketch<T> {}

/// No internal concurrency machinery: the default (no counters) applies.
impl<T: OrderedBits> InstrumentedSketch for Sketch<T> {}

/// Version capability: every state transition of the sequential sketch —
/// update, merge, absorb — strictly increases the stream length `n` (and
/// no transition leaves it unchanged, including mutations through
/// [`Sketch::as_bits_mut`]), so `n` doubles as an exact version with no
/// extra bookkeeping.
impl<T: OrderedBits> VersionedSketch for Sketch<T> {
    fn version(&self) -> u64 {
        self.inner.n()
    }
}

impl<T: OrderedBits> MergeableSketch<T> for Sketch<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.inner.summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        self.inner.absorb_summary(summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_median_of_symmetric_stream() {
        let mut s = Sketch::<f64>::with_seed(128, 4);
        for i in -50_000..50_000 {
            s.update(i as f64);
        }
        let m = s.quantile(0.5).unwrap();
        assert!(m.abs() < 2_000.0, "median {m} too far from 0");
    }

    #[test]
    fn i64_negative_ranks() {
        let mut s = Sketch::<i64>::new(64);
        for x in [-10i64, -5, 0, 5, 10] {
            s.update(x);
        }
        assert_eq!(s.rank_weight(-10), 0);
        assert_eq!(s.rank_weight(0), 2);
        assert_eq!(s.rank_weight(11), 5);
        assert_eq!(s.quantile(0.0), Some(-10));
        assert_eq!(s.quantile(1.0), Some(10));
    }

    #[test]
    fn u32_roundtrips() {
        let mut s = Sketch::<u32>::new(16);
        for x in 0..1000u32 {
            s.update(x);
        }
        let q = s.quantile(0.5).unwrap();
        assert!((400..=600).contains(&q), "median {q}");
    }

    #[test]
    fn cdf_is_monotone() {
        let mut s = Sketch::<f64>::with_seed(64, 6);
        for i in 0..10_000 {
            s.update((i % 100) as f64);
        }
        let cdf = s.cdf(&[0.0, 25.0, 50.0, 75.0, 100.0]);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(cdf[0] < 0.05);
        assert!((cdf[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_retained_bracket_stream() {
        let mut s = Sketch::<i64>::with_seed(32, 5);
        for x in -1000..1000i64 {
            s.update(x);
        }
        let lo = s.min_retained().unwrap();
        let hi = s.max_retained().unwrap();
        assert!((-1000..0).contains(&lo));
        assert!((0..1000).contains(&hi));
        assert!(lo < hi);
    }

    #[test]
    fn quantile_bounds_bracket_the_estimate() {
        let mut s = Sketch::<f64>::with_seed(128, 7);
        for i in 0..100_000 {
            s.update(i as f64);
        }
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        let mid = s.quantile(0.5).unwrap();
        assert!(lo <= mid && mid <= hi, "{lo} ≤ {mid} ≤ {hi}");
        // The bracket width tracks ε·n.
        assert!(hi - lo <= 6.0 * s.epsilon() * 100_000.0, "bracket too wide: {}", hi - lo);
    }

    #[test]
    fn bounds_on_empty_sketch_are_none() {
        let s = Sketch::<f64>::new(16);
        assert!(s.quantile_bounds(0.5).is_none());
        assert!(s.min_retained().is_none());
        assert!(s.max_retained().is_none());
    }

    /// The typed sketch is a complete engine through the trait objects
    /// alone (the conformance suite at the workspace root goes further;
    /// this pins the basics close to the impl).
    #[test]
    fn engine_traits_cover_the_sketch() {
        use qc_common::engine::SketchEngine;
        let mut engine: Box<dyn SketchEngine<f64>> = Box::new(Sketch::<f64>::with_seed(64, 3));
        engine.update_many(&(0..1000).map(f64::from).collect::<Vec<_>>());
        engine.flush();
        assert_eq!(engine.stream_len(), 1000);
        assert_eq!(engine.rank_weight(0.0), 0);
        assert!((engine.rank_fraction(500.0) - 0.5).abs() < 0.05);
        let cdf = engine.cdf(&[250.0, 750.0]);
        assert!(cdf[0] < cdf[1]);

        let mut other: Box<dyn SketchEngine<f64>> = Box::new(Sketch::<f64>::with_seed(64, 4));
        other.absorb_summary(&engine.to_summary());
        assert_eq!(other.stream_len(), 1000);
        assert!(other.query(0.5).is_some());
        assert!(other.error_bound() > 0.0);
    }

    #[test]
    fn typed_merge() {
        let mut a = Sketch::<f64>::with_seed(32, 1);
        let mut b = Sketch::<f64>::with_seed(32, 2);
        for i in 0..1000 {
            a.update(i as f64);
            b.update((i + 1000) as f64);
        }
        a.merge_from(&b);
        assert_eq!(a.n(), 2000);
        let m = a.quantile(0.5).unwrap();
        assert!((800.0..1200.0).contains(&m), "median {m}");
    }
}
