//! The core (bit-space) sequential Quantiles sketch.
//!
//! Structure (paper §2.2, Figure 3): a **base buffer** of up to `2k`
//! weight-1 elements (the paper's level 0) and a hierarchy of **levels**
//! that each hold either `0` or `k` sorted elements; an element in paper
//! level `i ≥ 1` carries weight `2^i`.
//!
//! When the base buffer fills it is sorted and *compacted*: the odd- or
//! even-indexed half is retained (fair coin) and carried into level 1. A
//! carry arriving at a full level merges with it (merge sort of two sorted
//! `k`-arrays) and is compacted again, one level higher — exactly the
//! propagation of Figure 3.

use qc_common::merge::merge_sorted;
use qc_common::rng::Xoshiro256;
use qc_common::sample::sample_odd_or_even;
use qc_common::summary::{Summary, WeightedSummary};

/// Sequential Agarwal et al. Quantiles sketch over 64-bit ordered keys.
///
/// This is the algorithm Apache DataSketches' classic Quantiles sketch
/// implements and the one Quancurrent parallelizes. Typed access (f64, i64,
/// …) is provided by [`crate::Sketch`].
#[derive(Clone, Debug)]
pub struct QuantilesSketch {
    k: usize,
    n: u64,
    /// Paper level 0: up to `2k` weight-1 elements, kept unsorted until
    /// compaction (sorting once per `2k` ingests is the classic trade).
    base: Vec<u64>,
    /// `levels[i]` is paper level `i + 1`: empty or exactly `k` sorted
    /// elements of weight `2^(i+1)`.
    levels: Vec<Option<Vec<u64>>>,
    rng: Xoshiro256,
}

impl QuantilesSketch {
    /// Create a sketch with level size `k` and a fixed default seed.
    ///
    /// `k` trades accuracy for space: the rank error is ≈ `1.76 / k^0.93`
    /// ([`qc_common::error::sequential_epsilon`]).
    pub fn new(k: usize) -> Self {
        Self::with_seed(k, 0x5E_ED0F_5EED)
    }

    /// Create a sketch with an explicit RNG seed (for reproducible runs).
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "k must be at least 2");
        Self {
            k,
            n: 0,
            base: Vec::with_capacity(2 * k),
            levels: Vec::new(),
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Level size parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stream elements processed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Has the sketch seen no elements?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of elements currently retained (memory ∝ this).
    pub fn num_retained(&self) -> usize {
        self.base.len() + self.levels.iter().flatten().map(Vec::len).sum::<usize>()
    }

    /// Sizes of the occupied structures: `(base length, per-level lengths)`.
    /// Level `i` of the return value is paper level `i + 1`.
    pub fn level_sizes(&self) -> (usize, Vec<usize>) {
        (self.base.len(), self.levels.iter().map(|l| l.as_ref().map_or(0, Vec::len)).collect())
    }

    /// The normalized rank error bound ε(k) of this sketch.
    pub fn epsilon(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.k)
    }

    /// Process one stream element (paper `update(x)`), given in ordered-bit
    /// space.
    #[inline]
    pub fn update(&mut self, bits: u64) {
        self.base.push(bits);
        self.n += 1;
        if self.base.len() == 2 * self.k {
            self.compact_base();
        }
    }

    /// Bulk-ingest an ascending slice.
    ///
    /// Equivalent to `for &x in sorted { self.update(x) }` (bit-identical,
    /// including RNG consumption) but skips the per-buffer sort whenever a
    /// full `2k` chunk lands on an empty base buffer. This is the "heavy
    /// merge-sort" path the FCDS propagator runs.
    pub fn ingest_sorted(&mut self, sorted: &[u64]) {
        debug_assert!(qc_common::merge::is_sorted(sorted), "ingest_sorted needs ascending input");
        let mut rest = sorted;
        while !rest.is_empty() {
            if self.base.is_empty() && rest.len() >= 2 * self.k {
                let (chunk, tail) = rest.split_at(2 * self.k);
                self.n += 2 * self.k as u64;
                let carry = sample_odd_or_even(chunk, &mut self.rng);
                self.carry_into(carry, 0);
                rest = tail;
            } else {
                let take = (2 * self.k - self.base.len()).min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                self.base.extend_from_slice(chunk);
                self.n += take as u64;
                if self.base.len() == 2 * self.k {
                    self.compact_base();
                }
                rest = tail;
            }
        }
    }

    /// Absorb a sorted array whose elements each stand for `2^level`
    /// stream elements (level 0 = raw weight-1 input).
    ///
    /// This is the mergeable-summaries primitive generalized to weighted
    /// input: it lets a *concurrent* sketch's snapshot (levels of weight
    /// `2^i`) be folded into a sequential sketch, making Quancurrent
    /// snapshots mergeable (see the workspace's `convert` module).
    ///
    /// # Panics
    /// For `level > 0`, `sorted.len()` must be a multiple of `k` (level
    /// arrays always are: they hold `k` or `2k` elements).
    pub fn absorb_level(&mut self, sorted: &[u64], level: u32) {
        debug_assert!(qc_common::merge::is_sorted(sorted), "absorb_level needs ascending input");
        if level == 0 {
            self.ingest_sorted(sorted);
            return;
        }
        assert!(
            sorted.len().is_multiple_of(self.k),
            "weighted input length {} is not a multiple of k = {}",
            sorted.len(),
            self.k
        );
        for chunk in sorted.chunks(self.k) {
            self.carry_into(chunk.to_vec(), level as usize - 1);
        }
        self.n += sorted.len() as u64 * (1u64 << level);
    }

    /// Absorb an arbitrary [`WeightedSummary`] into this sketch,
    /// conserving its total weight **exactly**.
    ///
    /// Unlike [`QuantilesSketch::absorb_level`], this is **total**: weights
    /// need not be powers of two (they are decomposed binarily) and level
    /// populations need not be multiples of `k`. A ragged remainder of
    /// `m < k` elements at level `L` is pushed down one level with each
    /// element duplicated — one element of weight `2^L` is exactly two of
    /// weight `2^(L-1)` — until it either completes a `k`-array or reaches
    /// the base buffer, which accepts any count. Each level contributes
    /// fewer than `k` descending elements, so the extra work is
    /// `O(k · levels)`, not `O(total weight)`.
    ///
    /// This is the summary-round-trip primitive behind engine tiering:
    /// any backend's exported summary can be folded into a sequential
    /// sketch without losing a single unit of stream weight.
    pub fn absorb_summary(&mut self, summary: &WeightedSummary) {
        // Per-level sorted runs via binary weight decomposition. `items()`
        // is sorted by value, so each run is sorted too.
        let mut levels: Vec<Vec<u64>> = Vec::new();
        for item in summary.items() {
            let mut w = item.weight;
            while w != 0 {
                let j = w.trailing_zeros() as usize;
                if levels.len() <= j {
                    levels.resize_with(j + 1, Vec::new);
                }
                levels[j].push(item.value_bits);
                w &= w - 1;
            }
        }
        // Top-down: absorb whole k-arrays at their level, descend ragged
        // remainders (duplicated) toward the base buffer.
        let mut carry: Vec<u64> = Vec::new();
        for level in (1..levels.len()).rev() {
            let own = std::mem::take(&mut levels[level]);
            let items = merge_sorted(&own, &carry);
            let full = items.len() - items.len() % self.k;
            for chunk in items[..full].chunks(self.k) {
                self.carry_into(chunk.to_vec(), level - 1);
            }
            self.n += (full as u64) << level;
            carry = Vec::with_capacity(2 * (items.len() - full));
            for &v in &items[full..] {
                carry.push(v);
                carry.push(v);
            }
        }
        // Weight-1 elements: the summary's own level-0 run plus everything
        // that descended all the way down.
        let zero = merge_sorted(levels.first().map_or(&[][..], Vec::as_slice), &carry);
        self.ingest_sorted(&zero);
    }

    /// Merge another sketch into this one (Agarwal et al.'s *mergeable
    /// summaries* property — the result distributes like a sketch built
    /// from the concatenated stream).
    ///
    /// # Panics
    /// If the sketches have different `k`.
    pub fn merge_from(&mut self, other: &QuantilesSketch) {
        assert_eq!(self.k, other.k, "can only merge sketches with equal k");
        // Weighted levels first: carry each of other's occupied levels into
        // the same level of self.
        for (i, level) in other.levels.iter().enumerate() {
            if let Some(arr) = level {
                self.carry_into(arr.clone(), i);
            }
        }
        // Other's base elements are weight-1 singletons.
        for &x in &other.base {
            self.base.push(x);
            if self.base.len() == 2 * self.k {
                self.compact_base();
            }
        }
        self.n += other.n;
    }

    /// Build the weighted `samples` view used to answer queries (§2.2).
    pub fn summary(&self) -> WeightedSummary {
        let mut base_sorted = self.base.clone();
        base_sorted.sort_unstable();
        let mut parts: Vec<(&[u64], u64)> = Vec::with_capacity(1 + self.levels.len());
        if !base_sorted.is_empty() {
            parts.push((&base_sorted[..], 1));
        }
        for (i, level) in self.levels.iter().enumerate() {
            if let Some(arr) = level {
                parts.push((&arr[..], 1u64 << (i + 1)));
            }
        }
        WeightedSummary::from_parts(parts)
    }

    /// Estimate the φ-quantile (in bit space). `None` iff empty.
    ///
    /// Cost: builds a summary (O(m log m) in the retained count m). Batch
    /// callers should build one [`QuantilesSketch::summary`] and query it.
    pub fn quantile_bits(&self, phi: f64) -> Option<u64> {
        self.summary().quantile_bits(phi)
    }

    /// Estimate the rank of `x` (in bit space).
    pub fn rank_bits(&self, x: u64) -> u64 {
        self.summary().rank_bits(x)
    }

    /// Sort + compact the full base buffer and carry the survivors up.
    fn compact_base(&mut self) {
        debug_assert_eq!(self.base.len(), 2 * self.k);
        self.base.sort_unstable();
        let carry = sample_odd_or_even(&self.base, &mut self.rng);
        self.base.clear();
        self.carry_into(carry, 0);
    }

    /// Insert a sorted `k`-array carrying weight `2^(slot+1)` at `levels
    /// [slot]`, merging-and-compacting upwards until a free level absorbs
    /// it (Figure 3's propagation).
    fn carry_into(&mut self, mut carry: Vec<u64>, mut slot: usize) {
        debug_assert_eq!(carry.len(), self.k);
        loop {
            if self.levels.len() <= slot {
                self.levels.resize_with(slot + 1, || None);
            }
            match self.levels[slot].take() {
                None => {
                    self.levels[slot] = Some(carry);
                    return;
                }
                Some(existing) => {
                    let merged = merge_sorted(&carry, &existing);
                    carry = sample_odd_or_even(&merged, &mut self.rng);
                    slot += 1;
                }
            }
        }
    }
}

impl Summary for QuantilesSketch {
    fn stream_len(&self) -> u64 {
        self.n
    }
    fn quantile_bits(&self, phi: f64) -> Option<u64> {
        QuantilesSketch::quantile_bits(self, phi)
    }
    fn rank_bits(&self, x_bits: u64) -> u64 {
        QuantilesSketch::rank_bits(self, x_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(k: usize, n: u64) -> QuantilesSketch {
        let mut s = QuantilesSketch::with_seed(k, 1);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..n {
            s.update(rng.next_below(1_000_000));
        }
        s
    }

    #[test]
    fn empty_sketch() {
        let s = QuantilesSketch::new(16);
        assert!(s.is_empty());
        assert_eq!(s.n(), 0);
        assert_eq!(s.num_retained(), 0);
        assert_eq!(s.quantile_bits(0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_of_one_rejected() {
        let _ = QuantilesSketch::new(1);
    }

    #[test]
    fn small_stream_is_exact() {
        // With n < 2k nothing is ever sampled: quantiles are exact order
        // statistics.
        let mut s = QuantilesSketch::new(64);
        for x in [50u64, 10, 40, 20, 30] {
            s.update(x);
        }
        assert_eq!(s.n(), 5);
        assert_eq!(s.quantile_bits(0.0), Some(10));
        assert_eq!(s.quantile_bits(0.5), Some(30)); // ⌊0.5·5⌋ = 2: W(30) = 2 ≤ 2 < W(40) = 3
        assert_eq!(s.quantile_bits(1.0), Some(50));
    }

    #[test]
    fn n_is_conserved_through_compactions() {
        let s = filled(8, 10_000);
        assert_eq!(s.n(), 10_000);
        assert_eq!(s.summary().stream_len(), 10_000, "summary weights must add to n");
    }

    #[test]
    fn retained_is_logarithmic() {
        let k = 128;
        let s = filled(k, 1_000_000);
        // base ≤ 2k plus ~log2(n / 2k) levels of k.
        let bound = 2 * k + k * 32;
        assert!(s.num_retained() <= bound, "retained {} > {}", s.num_retained(), bound);
        assert!(s.num_retained() < 10_000, "sublinear space: {}", s.num_retained());
    }

    #[test]
    fn level_invariants_hold() {
        let s = filled(16, 54_321);
        let (base_len, levels) = s.level_sizes();
        assert!(base_len < 2 * 16);
        for (i, len) in levels.iter().enumerate() {
            assert!(*len == 0 || *len == 16, "level {} has {} elements", i + 1, len);
        }
    }

    #[test]
    fn exact_compaction_boundary() {
        // Exactly 2k updates: base compacts to one k-level, base empties.
        let mut s = QuantilesSketch::with_seed(8, 3);
        for x in 0..16u64 {
            s.update(x);
        }
        let (base_len, levels) = s.level_sizes();
        assert_eq!(base_len, 0);
        assert_eq!(levels, vec![8]);
        assert_eq!(s.n(), 16);
    }

    #[test]
    fn rank_error_is_bounded_on_uniform_stream() {
        let k = 128;
        let n = 200_000u64;
        let mut s = QuantilesSketch::with_seed(k, 11);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut all: Vec<u64> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let x = rng.next_u64() >> 1;
            all.push(x);
            s.update(x);
        }
        all.sort_unstable();
        let eps = s.epsilon();
        let summary = s.summary();
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = summary.quantile_bits(phi).unwrap();
            let true_rank = all.partition_point(|&v| v < est) as f64;
            let err = (true_rank - phi * n as f64).abs() / n as f64;
            // ε is a high-probability bound; 4ε makes the test robust to
            // the fixed seed while still catching real estimator bugs.
            assert!(err < 4.0 * eps, "phi={phi}: rank error {err} vs eps {eps}");
        }
    }

    #[test]
    fn ingest_sorted_matches_update_loop_exactly() {
        let k = 32;
        let data: Vec<u64> = (0..10 * k as u64 + 7).collect();
        let mut a = QuantilesSketch::with_seed(k, 42);
        let mut b = QuantilesSketch::with_seed(k, 42);
        for &x in &data {
            a.update(x);
        }
        b.ingest_sorted(&data);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.level_sizes(), b.level_sizes());
        assert_eq!(a.summary().items(), b.summary().items());
    }

    #[test]
    fn ingest_sorted_with_partial_base_present() {
        let k = 16;
        let mut s = QuantilesSketch::with_seed(k, 9);
        for x in 0..5u64 {
            s.update(x);
        }
        let chunk: Vec<u64> = (100..100 + 4 * k as u64).collect();
        s.ingest_sorted(&chunk);
        assert_eq!(s.n(), 5 + 4 * k as u64);
        assert_eq!(s.summary().stream_len(), s.n());
    }

    #[test]
    fn absorb_level_zero_is_ingest() {
        let data: Vec<u64> = (0..100).collect();
        let mut a = QuantilesSketch::with_seed(8, 1);
        let mut b = QuantilesSketch::with_seed(8, 1);
        a.absorb_level(&data, 0);
        b.ingest_sorted(&data);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.summary().items(), b.summary().items());
    }

    #[test]
    fn absorb_weighted_level_accounts_n() {
        let k = 8;
        let mut s = QuantilesSketch::with_seed(k, 2);
        let level3: Vec<u64> = (0..k as u64).map(|i| i * 10).collect();
        s.absorb_level(&level3, 3);
        assert_eq!(s.n(), k as u64 * 8);
        assert_eq!(s.summary().stream_len(), s.n());
        // The absorbed elements sit at paper level 3 (weight 8).
        let (_, levels) = s.level_sizes();
        assert_eq!(levels[2], k, "k elements at paper level 3 (slot 2)");
    }

    #[test]
    fn absorb_2k_level_cascades_once() {
        let k = 4;
        let mut s = QuantilesSketch::with_seed(k, 3);
        let two_k: Vec<u64> = (0..2 * k as u64).collect();
        s.absorb_level(&two_k, 2);
        // Two k-chunks at level 2: the first settles, the second merges
        // and carries to level 3.
        assert_eq!(s.n(), 2 * k as u64 * 4);
        assert_eq!(s.summary().stream_len(), s.n());
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn absorb_rejects_ragged_weighted_input() {
        let mut s = QuantilesSketch::with_seed(8, 4);
        s.absorb_level(&[1, 2, 3], 1);
    }

    #[test]
    fn absorb_summary_conserves_weight_exactly() {
        use qc_common::summary::WeightedItem;
        // Ragged sizes and non-power-of-two weights exercise both the
        // decomposition and the descend-with-duplication path.
        let summary = WeightedSummary::from_items(vec![
            WeightedItem { value_bits: 10, weight: 5 },
            WeightedItem { value_bits: 20, weight: 7 },
            WeightedItem { value_bits: 30, weight: 1 },
            WeightedItem { value_bits: 40, weight: 16 },
        ]);
        let mut s = QuantilesSketch::with_seed(8, 1);
        s.absorb_summary(&summary);
        assert_eq!(s.n(), 29);
        assert_eq!(s.summary().stream_len(), 29);
    }

    #[test]
    fn absorb_summary_of_own_summary_is_exact_roundtrip() {
        let a = filled(16, 12_345);
        let mut b = QuantilesSketch::with_seed(16, 2);
        b.absorb_summary(&a.summary());
        assert_eq!(b.n(), a.n());
        assert_eq!(b.summary().stream_len(), a.n());
        // Estimates stay within the composed error budget.
        let (qa, qb) = (a.quantile_bits(0.5).unwrap(), b.quantile_bits(0.5).unwrap());
        let ra = a.summary().rank_bits(qb).abs_diff(b.summary().rank_bits(qb));
        assert!(
            ra as f64 / a.n() as f64 <= 4.0 * a.epsilon(),
            "round-trip rank drift {ra} (qa={qa}, qb={qb})"
        );
    }

    #[test]
    fn absorb_summary_into_nonempty_sketch_adds() {
        let mut s = filled(8, 1000);
        let other = filled(8, 500).summary();
        s.absorb_summary(&other);
        assert_eq!(s.n(), 1500);
        assert_eq!(s.summary().stream_len(), 1500);
    }

    #[test]
    fn absorb_empty_summary_is_identity() {
        let mut s = filled(8, 100);
        let before = s.summary().items().to_vec();
        s.absorb_summary(&WeightedSummary::empty());
        assert_eq!(s.n(), 100);
        assert_eq!(s.summary().items(), &before[..]);
    }

    #[test]
    fn merge_conserves_n_and_bounds_error() {
        let k = 64;
        let mut a = QuantilesSketch::with_seed(k, 1);
        let mut b = QuantilesSketch::with_seed(k, 2);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.next_below(1 << 40);
            all.push(x);
            a.update(x);
        }
        for _ in 0..30_000 {
            let x = rng.next_below(1 << 40);
            all.push(x);
            b.update(x);
        }
        a.merge_from(&b);
        assert_eq!(a.n(), 80_000);
        assert_eq!(a.summary().stream_len(), 80_000);

        all.sort_unstable();
        let est = a.quantile_bits(0.5).unwrap();
        let true_rank = all.partition_point(|&v| v < est) as f64 / all.len() as f64;
        assert!((true_rank - 0.5).abs() < 4.0 * a.epsilon());
    }

    #[test]
    #[should_panic(expected = "equal k")]
    fn merge_with_different_k_rejected() {
        let mut a = QuantilesSketch::new(16);
        let b = QuantilesSketch::new(32);
        a.merge_from(&b);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = filled(16, 1000);
        let before = a.summary().items().to_vec();
        let empty = QuantilesSketch::new(16);
        a.merge_from(&empty);
        assert_eq!(a.n(), 1000);
        assert_eq!(a.summary().items(), &before[..]);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = filled(32, 12_345);
        let b = filled(32, 12_345);
        assert_eq!(a.summary().items(), b.summary().items());
    }

    #[test]
    fn constant_stream_estimates_constant() {
        let mut s = QuantilesSketch::with_seed(16, 8);
        for _ in 0..100_000 {
            s.update(777);
        }
        for phi in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile_bits(phi), Some(777));
        }
        assert_eq!(s.rank_bits(777), 0);
        assert_eq!(s.rank_bits(778), 100_000);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = filled(16, 1000);
        let b = a.clone();
        a.update(1);
        assert_eq!(b.n(), 1000);
        assert_eq!(a.n(), 1001);
    }
}
