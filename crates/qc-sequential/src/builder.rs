//! Builder: pick `k` directly or derive it from a target rank error.

use qc_common::bits::OrderedBits;

use crate::sketch::QuantilesSketch;
use crate::typed::Sketch;

/// Fluent construction of sequential sketches.
///
/// ```
/// use qc_sequential::SketchBuilder;
///
/// // "I can tolerate 1% rank error": the builder picks the smallest
/// // power-of-two k that achieves it.
/// let sketch = SketchBuilder::new().epsilon(0.01).seed(7).build::<f64>();
/// assert!(sketch.epsilon() <= 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct SketchBuilder {
    k: Option<usize>,
    epsilon: Option<f64>,
    seed: u64,
}

impl SketchBuilder {
    /// Start with defaults (`k = 128` unless overridden).
    pub fn new() -> Self {
        Self { k: None, epsilon: None, seed: 0x5E_ED0F_5EED }
    }

    /// Set the level size directly (overrides [`SketchBuilder::epsilon`]).
    pub fn k(mut self, k: usize) -> Self {
        assert!(k >= 2, "k must be at least 2");
        self.k = Some(k);
        self
    }

    /// Derive `k` from a target normalized rank error.
    pub fn epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = Some(eps);
        self
    }

    /// Seed the sampling RNG (reproducible runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `k` this configuration resolves to.
    pub fn resolved_k(&self) -> usize {
        if let Some(k) = self.k {
            k
        } else if let Some(eps) = self.epsilon {
            qc_common::error::k_for_epsilon(eps)
        } else {
            128
        }
    }

    /// Build a typed sketch.
    pub fn build<T: OrderedBits>(&self) -> Sketch<T> {
        Sketch::with_seed(self.resolved_k(), self.seed)
    }

    /// Build an untyped (bit-space) sketch.
    pub fn build_bits(&self) -> QuantilesSketch {
        QuantilesSketch::with_seed(self.resolved_k(), self.seed)
    }
}

impl Default for SketchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_k_is_128() {
        assert_eq!(SketchBuilder::new().resolved_k(), 128);
    }

    #[test]
    fn explicit_k_wins_over_epsilon() {
        let b = SketchBuilder::new().epsilon(0.001).k(64);
        assert_eq!(b.resolved_k(), 64);
    }

    #[test]
    fn epsilon_derives_sufficient_k() {
        for eps in [0.05, 0.01, 0.003] {
            let k = SketchBuilder::new().epsilon(eps).resolved_k();
            assert!(qc_common::error::sequential_epsilon(k) <= eps);
        }
    }

    #[test]
    fn built_sketches_use_config() {
        let s = SketchBuilder::new().k(32).seed(5).build::<u64>();
        assert_eq!(s.k(), 32);
        let bits = SketchBuilder::new().k(32).seed(5).build_bits();
        assert_eq!(bits.k(), 32);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn bad_epsilon_rejected() {
        let _ = SketchBuilder::new().epsilon(1.5);
    }
}
