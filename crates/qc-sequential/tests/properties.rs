//! Property-based tests of the sequential sketch.

use proptest::prelude::*;
use qc_common::Summary;
use qc_sequential::QuantilesSketch;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The total weight in the summary always equals the stream length,
    /// regardless of how compactions fell.
    #[test]
    fn weight_conservation(
        k in prop::sample::select(vec![2usize, 4, 8, 16, 32]),
        xs in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 0..2000),
        seed in any::<u64>(),
    ) {
        let mut s = QuantilesSketch::with_seed(k, seed);
        for &x in &xs {
            s.update(x);
        }
        prop_assert_eq!(s.n(), xs.len() as u64);
        prop_assert_eq!(s.summary().stream_len(), xs.len() as u64);
    }

    /// Every level holds 0 or exactly k sorted elements.
    #[test]
    fn level_structure_invariant(
        k in prop::sample::select(vec![2usize, 4, 8]),
        n in 0u64..5000,
        seed in any::<u64>(),
    ) {
        let mut s = QuantilesSketch::with_seed(k, seed);
        for i in 0..n {
            s.update(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let (base, levels) = s.level_sizes();
        prop_assert!(base < 2 * k);
        for len in levels {
            prop_assert!(len == 0 || len == k);
        }
    }

    /// While n ≤ 2k the sketch is exact: quantile(φ) is the ⌊φn⌋-ranked
    /// element.
    #[test]
    fn exact_below_first_compaction(
        xs in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 1..64),
        phi in 0.0f64..=1.0,
    ) {
        let k = 32; // 2k = 64 > max len
        let mut s = QuantilesSketch::with_seed(k, 0);
        for &x in &xs {
            s.update(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let target = ((phi * xs.len() as f64).floor() as usize).min(xs.len() - 1);
        prop_assert_eq!(s.quantile_bits(phi), Some(sorted[target]));
    }

    /// Estimates always come from the stream (never invented values).
    #[test]
    fn estimates_are_stream_values(
        xs in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 1..3000),
        seed in any::<u64>(),
    ) {
        let mut s = QuantilesSketch::with_seed(8, seed);
        for &x in &xs {
            s.update(x);
        }
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = s.quantile_bits(phi).unwrap();
            prop_assert!(xs.contains(&est), "estimate {est} not in stream");
        }
    }

    /// rank is monotone in its argument.
    #[test]
    fn rank_monotonicity(
        xs in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 1..1000),
        probes in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 2..20),
        seed in any::<u64>(),
    ) {
        let mut s = QuantilesSketch::with_seed(4, seed);
        for &x in &xs {
            s.update(x);
        }
        let mut probes = probes;
        probes.sort_unstable();
        let summary = s.summary();
        let ranks: Vec<u64> = probes.iter().map(|&p| summary.rank_bits(p)).collect();
        for w in ranks.windows(2) {
            prop_assert!(w[0] <= w[1], "rank not monotone: {:?}", ranks);
        }
    }

    /// Merging must behave like ingesting the concatenation, up to the
    /// randomness of sampling: n, level-structure legality, and weight
    /// conservation all hold.
    #[test]
    fn merge_is_sound(
        xs in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 0..1500),
        ys in prop::collection::vec(any::<u64>().prop_map(|v| v >> 1), 0..1500),
        seed in any::<u64>(),
    ) {
        let k = 8;
        let mut a = QuantilesSketch::with_seed(k, seed);
        let mut b = QuantilesSketch::with_seed(k, seed.wrapping_add(1));
        for &x in &xs { a.update(x); }
        for &y in &ys { b.update(y); }
        a.merge_from(&b);
        prop_assert_eq!(a.n(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(a.summary().stream_len(), a.n());
        let (base, levels) = a.level_sizes();
        prop_assert!(base < 2 * k);
        for len in levels {
            prop_assert!(len == 0 || len == k);
        }
    }
}

/// Statistical sanity (fixed seeds, not proptest): the median estimate of a
/// shuffled range should concentrate near the true median across many
/// independently-seeded sketches.
#[test]
fn median_concentrates_across_seeds() {
    let n = 40_000u64;
    let k = 64;
    let mut errs = Vec::new();
    for seed in 0..20 {
        let mut s = QuantilesSketch::with_seed(k, seed);
        // Deterministic "shuffle": multiply by an odd constant mod 2^16 range.
        for i in 0..n {
            s.update((i.wrapping_mul(48271)) % n);
        }
        let est = s.quantile_bits(0.5).unwrap() as f64;
        errs.push((est - n as f64 / 2.0).abs() / n as f64);
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean_err < 0.02, "mean median error {mean_err}");
}
