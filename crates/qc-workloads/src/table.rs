//! Minimal result tables: aligned console output plus CSV emission, so
//! every figure binary prints both a readable table and a machine-readable
//! series.

use std::fmt::Write as _;

/// A column-oriented results table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width != header width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print the aligned table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write the CSV next to the console output (to `path`).
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["threads", "throughput"]);
        t.row(["1", "3.2M"]).row(["32", "41.7M"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("threads"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(["k", "v"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "k,v\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }
}
