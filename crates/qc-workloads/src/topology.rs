//! Simulated NUMA topology.
//!
//! The paper's testbed is a 4-socket Xeon E5-4650 (8 cores per socket,
//! 32 threads, §5.1) with threads pinned fill-first. The *algorithmic*
//! role of the topology is which Gather&Sort unit each update thread
//! feeds; this module reproduces the paper's placement policy in software
//! so the benchmark harness can run the same sweeps on any machine (the
//! substitution is documented in DESIGN.md).

/// A machine model: `nodes` NUMA nodes of `cores_per_node` threads each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of NUMA nodes (Gather&Sort units).
    pub nodes: usize,
    /// Hardware threads per node.
    pub cores_per_node: usize,
}

impl Topology {
    /// The paper's testbed: 4 nodes × 8 cores.
    pub fn paper_testbed() -> Self {
        Self { nodes: 4, cores_per_node: 8 }
    }

    /// A single-node machine with `cores` threads.
    pub fn single_node(cores: usize) -> Self {
        Self { nodes: 1, cores_per_node: cores }
    }

    /// Fill-first placement (§5.1): "8 threads use only a single node,
    /// while 9 use two nodes with 8 threads on one and 1 on the second."
    pub fn node_of(&self, thread: usize) -> usize {
        (thread / self.cores_per_node) % self.nodes
    }

    /// How many nodes `threads` threads occupy (the `S` in the relaxation
    /// formula r = 4kS + (N−S)b).
    pub fn nodes_used(&self, threads: usize) -> usize {
        threads.div_ceil(self.cores_per_node).clamp(1, self.nodes)
    }

    /// Total hardware threads.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Per-thread node assignment for a run of `threads` threads.
    pub fn assignment(&self, threads: usize) -> Vec<usize> {
        (0..threads).map(|t| self.node_of(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.total_threads(), 32);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(31), 3);
    }

    #[test]
    fn paper_example_node_counts() {
        let t = Topology::paper_testbed();
        // §5.1: 8 threads → one node; 9 threads → two nodes.
        assert_eq!(t.nodes_used(8), 1);
        assert_eq!(t.nodes_used(9), 2);
        assert_eq!(t.nodes_used(32), 4);
        assert_eq!(t.nodes_used(1), 1);
    }

    #[test]
    fn assignment_is_fill_first() {
        let t = Topology { nodes: 2, cores_per_node: 2 };
        assert_eq!(t.assignment(5), vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn single_node_maps_everything_to_zero() {
        let t = Topology::single_node(16);
        assert!(t.assignment(40).iter().all(|&n| n == 0));
    }
}
