//! Run statistics: every paper data point is "an average of 15 runs, to
//! minimize measurement noise" (§5.1).

/// Summary statistics over repeated measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Number of samples.
    pub runs: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl RunStats {
    /// Compute statistics over `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Self {
            runs: samples.len(),
            mean,
            std_dev,
            std_err: std_dev / n.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Run `measure` `runs` times and summarize.
    pub fn measure(runs: usize, mut measure: impl FnMut(usize) -> f64) -> Self {
        let samples: Vec<f64> = (0..runs).map(&mut measure).collect();
        Self::from_samples(&samples)
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, min {:.4}, max {:.4})",
            self.mean, self.std_err, self.runs, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_zero() {
        let s = RunStats::from_samples(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = RunStats::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_values() {
        let s = RunStats::from_samples(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert!((s.std_err - 2.0 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
    }

    #[test]
    fn measure_invokes_n_times() {
        let mut calls = 0;
        let s = RunStats::measure(7, |i| {
            calls += 1;
            i as f64
        });
        assert_eq!(calls, 7);
        assert_eq!(s.runs, 7);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }
}
