//! Synthetic stream generators.
//!
//! The paper draws streams "from a uniform distribution, unless stated
//! otherwise" (§5.1) and evaluates accuracy on uniform and normal streams
//! (Figures 2, 9). The generators here cover those plus the skewed and
//! ordered streams any serious quantiles evaluation should include
//! (sorted input is the classic adversary for sampling-based sketches).
//!
//! All generators are deterministic functions of their seed, so every
//! experiment is reproducible and multi-threaded runs can give each thread
//! an independent substream (`seed + thread_id`).

use qc_common::bits::OrderedBits;
use qc_common::rng::Xoshiro256;

/// Stream distribution families used across the benchmark suite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Uniform over `[0, 1)` (the paper's default).
    Uniform,
    /// Normal via Box–Muller.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation (must be positive).
        std_dev: f64,
    },
    /// Zipf-like skew: `floor(u^(-1/(s-1)))` capped at `max` — a heavy
    ///-tailed integer distribution (an inverse-CDF Pareto approximation of
    /// the Zipf family; exact for the tail shape the sketch cares about).
    Zipf {
        /// Skew exponent `s > 1`; larger = more skewed.
        s: f64,
        /// Largest emitted value.
        max: u64,
    },
    /// `0, 1, 2, …` — sorted ascending (adversarial for samplers).
    Ascending,
    /// `n−1, n−2, …` given the expected length (adversarial, reversed).
    Descending {
        /// Stream length the countdown starts from.
        n: u64,
    },
    /// A repeating sawtooth `0..period` — heavy duplication.
    Sawtooth {
        /// Period of the ramp.
        period: u64,
    },
    /// A single constant value.
    Constant(f64),
}

/// A seeded generator of stream elements in `f64` and ordered-bit forms.
#[derive(Clone, Debug)]
pub struct StreamGen {
    dist: Distribution,
    rng: Xoshiro256,
    counter: u64,
    /// Spare normal deviate from Box–Muller.
    spare: Option<f64>,
}

impl StreamGen {
    /// Create a generator for `dist` with the given seed.
    pub fn new(dist: Distribution, seed: u64) -> Self {
        if let Distribution::Normal { std_dev, .. } = dist {
            assert!(std_dev > 0.0, "std_dev must be positive");
        }
        if let Distribution::Zipf { s, max } = dist {
            assert!(s > 1.0, "zipf exponent must exceed 1");
            assert!(max >= 1, "zipf max must be at least 1");
        }
        Self { dist, rng: Xoshiro256::seed_from_u64(seed), counter: 0, spare: None }
    }

    /// Next element as `f64`.
    pub fn next_f64(&mut self) -> f64 {
        let value = match self.dist {
            Distribution::Uniform => self.rng.next_f64(),
            Distribution::Normal { mean, std_dev } => {
                let z = self.next_standard_normal();
                mean + std_dev * z
            }
            Distribution::Zipf { s, max } => {
                let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
                let x = u.powf(-1.0 / (s - 1.0)).floor();
                x.min(max as f64)
            }
            Distribution::Ascending => self.counter as f64,
            Distribution::Descending { n } => (n.saturating_sub(self.counter + 1)) as f64,
            Distribution::Sawtooth { period } => (self.counter % period) as f64,
            Distribution::Constant(c) => c,
        };
        self.counter += 1;
        value
    }

    /// Next element embedded in ordered-bit space (what the sketches
    /// ingest internally).
    #[inline]
    pub fn next_bits(&mut self) -> u64 {
        self.next_f64().to_ordered_bits()
    }

    /// Materialize the next `n` elements as bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_bits()).collect()
    }

    /// Materialize the next `n` elements as `f64`.
    pub fn take_f64(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_f64()).collect()
    }

    /// Marsaglia-free Box–Muller (two uniforms → two normals, one cached).
    fn next_standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// The generator's distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }
}

impl Iterator for StreamGen {
    type Item = f64;
    fn next(&mut self) -> Option<f64> {
        Some(self.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_in_unit_interval_with_half_mean() {
        let mut g = StreamGen::new(Distribution::Uniform, 1);
        let xs = g.take_f64(50_000);
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let mut g = StreamGen::new(Distribution::Normal { mean: 10.0, std_dev: 2.0 }, 2);
        let xs = g.take_f64(100_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut g = StreamGen::new(Distribution::Zipf { s: 1.5, max: 1000 }, 3);
        let xs = g.take_f64(50_000);
        assert!(xs.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        let ones = xs.iter().filter(|&&x| x == 1.0).count() as f64 / xs.len() as f64;
        assert!(ones > 0.25, "zipf(1.5) should emit many 1s: {ones}");
    }

    #[test]
    fn ascending_and_descending_are_ordered() {
        let mut up = StreamGen::new(Distribution::Ascending, 0);
        assert_eq!(up.take_f64(4), vec![0.0, 1.0, 2.0, 3.0]);
        let mut down = StreamGen::new(Distribution::Descending { n: 4 }, 0);
        assert_eq!(down.take_f64(4), vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn sawtooth_wraps() {
        let mut g = StreamGen::new(Distribution::Sawtooth { period: 3 }, 0);
        assert_eq!(g.take_f64(7), vec![0.0, 1.0, 2.0, 0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn constant_is_constant() {
        let mut g = StreamGen::new(Distribution::Constant(2.5), 9);
        assert!(g.take_f64(10).iter().all(|&x| x == 2.5));
    }

    #[test]
    fn same_seed_same_stream() {
        let a = StreamGen::new(Distribution::Uniform, 42).take_bits(100);
        let b = StreamGen::new(Distribution::Uniform, 42).take_bits(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamGen::new(Distribution::Uniform, 1).take_bits(100);
        let b = StreamGen::new(Distribution::Uniform, 2).take_bits(100);
        assert_ne!(a, b);
    }

    #[test]
    fn bits_preserve_order_of_values() {
        let mut g = StreamGen::new(Distribution::Normal { mean: 0.0, std_dev: 1.0 }, 5);
        for _ in 0..1000 {
            let x = g.next_f64();
            let y = g.next_f64();
            assert_eq!(x < y, x.to_ordered_bits() < y.to_ordered_bits());
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn zipf_s_of_one_rejected() {
        let _ = StreamGen::new(Distribution::Zipf { s: 1.0, max: 10 }, 0);
    }
}
