//! Multi-threaded measurement harness.
//!
//! All throughput numbers in the benchmark suite come from these runners:
//! a barrier-released pack of worker threads, wall-clock timed from the
//! moment the barrier drops to the last join — the same methodology the
//! paper describes in §5.1 ("we measure the time it takes to feed the
//! sketch").
//!
//! The engine-generic runners ([`ingest_throughput`],
//! [`concurrent_ingest_throughput`]) drive any backend through the
//! [`qc_common::engine`] traits, so one measurement path covers the
//! sequential sketch, Quancurrent, FCDS, and any store engine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use qc_common::engine::{ConcurrentIngest, StreamIngest};
use qc_common::OrderedBits;

/// A throughput measurement: operations completed over a wall-clock span.
#[derive(Clone, Copy, Debug, Default)]
pub struct Throughput {
    /// Total operations across all threads.
    pub ops: u64,
    /// Wall-clock duration of the measured region.
    pub elapsed: Duration,
}

impl Throughput {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

impl std::fmt::Display for Throughput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} ops in {:?})", format_ops(self.ops_per_sec()), self.ops, self.elapsed)
    }
}

/// Human format for op rates: `22.3M op/s`.
pub fn format_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e9 {
        format!("{:.2}G op/s", ops_per_sec / 1e9)
    } else if ops_per_sec >= 1e6 {
        format!("{:.2}M op/s", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.2}K op/s", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.2} op/s")
    }
}

/// Run a fixed per-thread op count and measure throughput.
///
/// `make_worker(t)` builds the per-thread state (updater handle, stream
/// generator, …) **before** the clock starts; the returned closure is then
/// called `ops_per_thread` times inside the timed region.
pub fn fixed_ops_throughput<W>(
    threads: usize,
    ops_per_thread: u64,
    make_worker: impl Fn(usize) -> W + Sync,
) -> Throughput
where
    W: FnMut(u64) + Send,
{
    assert!(threads >= 1);
    let barrier = Barrier::new(threads + 1);
    let done = Barrier::new(threads + 1);
    let make_worker = &make_worker;
    let mut result = Throughput::default();
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let done = &done;
            s.spawn(move || {
                let mut work = make_worker(t);
                barrier.wait();
                for i in 0..ops_per_thread {
                    work(i);
                }
                done.wait();
            });
        }
        // Start the clock *before* releasing the barrier: on machines with
        // fewer cores than threads, a worker can otherwise run to completion
        // before this thread is rescheduled to read the clock.
        let start = Instant::now();
        barrier.wait();
        done.wait();
        result = Throughput { ops: threads as u64 * ops_per_thread, elapsed: start.elapsed() };
    });
    result
}

/// Feed `values` through any single-writer engine (trait-object friendly:
/// `E` may be unsized, e.g. `dyn SketchEngine<f64>`), flush, and measure.
pub fn ingest_throughput<T, E>(engine: &mut E, values: &[T]) -> Throughput
where
    T: OrderedBits,
    E: StreamIngest<T> + ?Sized,
{
    let start = Instant::now();
    engine.update_many(values);
    engine.flush();
    Throughput { ops: values.len() as u64, elapsed: start.elapsed() }
}

/// Barrier-released multi-writer fill through
/// [`ConcurrentIngest::writer`]: each thread registers one writer and
/// builds its stream generator (`make_gen(thread)`) before the clock
/// starts, then pushes `ops_per_thread` generated elements. This is the
/// engine-generic form of the paper's update-throughput experiment — it
/// runs unmodified against Quancurrent and FCDS.
pub fn concurrent_ingest_throughput<T, S, G>(
    sketch: &S,
    threads: usize,
    ops_per_thread: u64,
    make_gen: impl Fn(usize) -> G + Sync,
) -> Throughput
where
    T: OrderedBits,
    S: ConcurrentIngest<T> + ?Sized,
    G: FnMut(u64) -> T + Send,
{
    let make_gen = &make_gen;
    fixed_ops_throughput(threads, ops_per_thread, |t| {
        let mut writer = sketch.writer();
        let mut gen = make_gen(t);
        move |i| writer.update(gen(i))
    })
}

/// Mixed workload: `update_threads` run a fixed number of updates each
/// while `query_threads` issue queries until the updates finish. Returns
/// both throughputs over the same wall-clock window (Figure 6c's setup).
pub fn mixed_throughput<U, Q>(
    update_threads: usize,
    query_threads: usize,
    updates_per_thread: u64,
    make_updater: impl Fn(usize) -> U + Sync,
    make_querier: impl Fn(usize) -> Q + Sync,
) -> (Throughput, Throughput)
where
    U: FnMut(u64) + Send,
    Q: FnMut(u64) + Send,
{
    assert!(update_threads >= 1);
    let barrier = Barrier::new(update_threads + query_threads + 1);
    let done = Barrier::new(update_threads + 1);
    let stop = AtomicBool::new(false);
    let queries_done = AtomicU64::new(0);
    let make_updater = &make_updater;
    let make_querier = &make_querier;
    let mut update_tp = Throughput::default();
    let mut query_tp = Throughput::default();

    std::thread::scope(|s| {
        for t in 0..update_threads {
            let barrier = &barrier;
            let done = &done;
            s.spawn(move || {
                let mut work = make_updater(t);
                barrier.wait();
                for i in 0..updates_per_thread {
                    work(i);
                }
                done.wait();
            });
        }
        for t in 0..query_threads {
            let barrier = &barrier;
            let stop = &stop;
            let queries_done = &queries_done;
            s.spawn(move || {
                let mut work = make_querier(t);
                barrier.wait();
                let mut count = 0u64;
                while !stop.load(SeqCst) {
                    work(count);
                    count += 1;
                }
                queries_done.fetch_add(count, SeqCst);
            });
        }
        // As in `fixed_ops_throughput`: clock starts before the release so
        // oversubscribed schedules cannot shrink the measured window.
        let start = Instant::now();
        barrier.wait();
        done.wait();
        let elapsed = start.elapsed();
        stop.store(true, SeqCst);
        update_tp = Throughput { ops: update_threads as u64 * updates_per_thread, elapsed };
        // Query threads stop just after the updates complete; their count
        // is attributed to the same window (overshoot < 1 query/thread).
        query_tp = Throughput { ops: 0, elapsed };
    });
    query_tp.ops = queries_done.load(SeqCst);
    (update_tp, query_tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn format_ops_scales() {
        assert_eq!(format_ops(12.0), "12.00 op/s");
        assert_eq!(format_ops(1_500.0), "1.50K op/s");
        assert_eq!(format_ops(22_000_000.0), "22.00M op/s");
        assert_eq!(format_ops(3.1e9), "3.10G op/s");
    }

    #[test]
    fn throughput_math() {
        let t = Throughput { ops: 1000, elapsed: Duration::from_millis(500) };
        assert!((t.ops_per_sec() - 2000.0).abs() < 1.0);
    }

    #[test]
    fn fixed_ops_runs_exactly_n_ops() {
        let count = AtomicU64::new(0);
        let tp = fixed_ops_throughput(4, 1000, |_t| {
            let count = &count;
            move |_i| {
                count.fetch_add(1, SeqCst);
            }
        });
        assert_eq!(tp.ops, 4000);
        assert_eq!(count.load(SeqCst), 4000);
        assert!(tp.elapsed > Duration::ZERO);
    }

    #[test]
    fn ingest_runner_counts_and_flushes() {
        struct Probe {
            n: u64,
            flushed: bool,
        }
        impl StreamIngest<u64> for Probe {
            fn update(&mut self, _x: u64) {
                self.n += 1;
            }
            fn flush(&mut self) {
                self.flushed = true;
            }
        }
        let mut probe = Probe { n: 0, flushed: false };
        let tp = ingest_throughput(&mut probe, &[1u64, 2, 3, 4, 5]);
        assert_eq!(tp.ops, 5);
        assert_eq!(probe.n, 5);
        assert!(probe.flushed, "runner must flush so queries see the stream");
    }

    #[test]
    fn concurrent_ingest_runner_spans_writers() {
        use std::sync::atomic::AtomicU64;
        struct Shared(AtomicU64);
        struct Writer<'a>(&'a AtomicU64);
        impl StreamIngest<u64> for Writer<'_> {
            fn update(&mut self, x: u64) {
                self.0.fetch_add(x, SeqCst);
            }
        }
        impl ConcurrentIngest<u64> for Shared {
            fn writer(&self) -> Box<dyn StreamIngest<u64> + Send + '_> {
                Box::new(Writer(&self.0))
            }
        }
        let shared = Shared(AtomicU64::new(0));
        let tp = concurrent_ingest_throughput(&shared, 4, 100, |_t| |_i| 1u64);
        assert_eq!(tp.ops, 400);
        assert_eq!(shared.0.load(SeqCst), 400);
    }

    #[test]
    fn mixed_counts_both_sides() {
        let updates = AtomicU64::new(0);
        let queries = AtomicU64::new(0);
        let (u, q) = mixed_throughput(
            2,
            2,
            5_000,
            |_t| {
                let updates = &updates;
                move |_i| {
                    updates.fetch_add(1, SeqCst);
                }
            },
            |_t| {
                let queries = &queries;
                move |_i| {
                    queries.fetch_add(1, SeqCst);
                }
            },
        );
        assert_eq!(u.ops, 10_000);
        assert_eq!(updates.load(SeqCst), 10_000);
        assert_eq!(q.ops, queries.load(SeqCst));
        assert!(q.ops > 0, "query threads must have run");
    }
}
