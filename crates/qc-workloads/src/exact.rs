//! Brute-force exact quantiles — the ground truth every accuracy figure
//! compares against ("Exact CDF" in Figures 2 and 9).

use qc_common::bits::OrderedBits;
use qc_common::summary::Summary;

/// An exact oracle over a finite stream: stores a sorted copy and answers
/// rank/quantile queries precisely.
#[derive(Clone, Debug)]
pub struct ExactOracle {
    sorted: Vec<u64>,
}

impl ExactOracle {
    /// Build from raw ordered-bit keys.
    pub fn from_bits(mut bits: Vec<u64>) -> Self {
        bits.sort_unstable();
        Self { sorted: bits }
    }

    /// Build from typed values.
    pub fn from_values<T: OrderedBits>(values: &[T]) -> Self {
        Self::from_bits(values.iter().map(|x| x.to_ordered_bits()).collect())
    }

    /// Stream length.
    pub fn n(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// Exact rank: number of elements strictly smaller than `x`.
    pub fn rank_bits(&self, x: u64) -> u64 {
        self.sorted.partition_point(|&v| v < x) as u64
    }

    /// Rank interval of `x`: `[#elements < x, #elements ≤ x]`. With
    /// duplicates, any rank in this interval is a correct answer for `x`.
    pub fn rank_interval_bits(&self, x: u64) -> (u64, u64) {
        let lo = self.sorted.partition_point(|&v| v < x) as u64;
        let hi = self.sorted.partition_point(|&v| v <= x) as u64;
        (lo, hi)
    }

    /// Exact φ-quantile: the element of rank ⌊φn⌋.
    pub fn quantile_bits(&self, phi: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let idx = ((phi * self.sorted.len() as f64).floor() as usize).min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Exact typed quantile.
    pub fn quantile<T: OrderedBits>(&self, phi: f64) -> Option<T> {
        self.quantile_bits(phi).map(T::from_ordered_bits)
    }

    /// Normalized rank error of an estimate for the φ-quantile: the
    /// distance from ⌊φn⌋ to the estimate's rank *interval*, over n.
    ///
    /// Using the interval `[#< x, #≤ x]` (rather than the strict rank)
    /// makes the metric correct on duplicate-heavy streams: an element
    /// whose duplicates span the target rank is a perfect answer.
    pub fn rank_error(&self, phi: f64, estimate_bits: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.len() as f64;
        let target = (phi.clamp(0.0, 1.0) * n).floor();
        let (lo, hi) = self.rank_interval_bits(estimate_bits);
        let below = lo as f64 - target;
        let above = target - hi as f64;
        below.max(above).max(0.0) / n
    }
}

/// Accuracy report of a summary against the oracle over a φ grid.
#[derive(Clone, Debug, Default)]
pub struct AccuracyReport {
    /// Per-φ normalized rank errors.
    pub errors: Vec<(f64, f64)>,
}

impl AccuracyReport {
    /// Evaluate `summary` at `grid` quantiles against `oracle`.
    pub fn evaluate<S: Summary>(summary: &S, oracle: &ExactOracle, grid: &[f64]) -> Self {
        let errors = grid
            .iter()
            .map(|&phi| {
                let err = summary.quantile_bits(phi).map_or(1.0, |est| oracle.rank_error(phi, est));
                (phi, err)
            })
            .collect();
        Self { errors }
    }

    /// Largest normalized rank error on the grid.
    pub fn max_error(&self) -> f64 {
        self.errors.iter().map(|&(_, e)| e).fold(0.0, f64::max)
    }

    /// Mean normalized rank error.
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().map(|&(_, e)| e).sum::<f64>() / self.errors.len() as f64
    }

    /// Root-mean-square normalized rank error — the "standard error of
    /// estimation" metric of Figure 8.
    pub fn rms_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let sq = self.errors.iter().map(|&(_, e)| e * e).sum::<f64>();
        (sq / self.errors.len() as f64).sqrt()
    }
}

/// A uniform φ grid of `points` quantiles in `(0, 1)`.
pub fn phi_grid(points: usize) -> Vec<f64> {
    (1..=points).map(|i| i as f64 / (points + 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_common::summary::{WeightedItem, WeightedSummary};

    #[test]
    fn oracle_ranks_and_quantiles() {
        let oracle = ExactOracle::from_bits(vec![10, 20, 30, 40, 50]);
        assert_eq!(oracle.n(), 5);
        assert_eq!(oracle.rank_bits(10), 0);
        assert_eq!(oracle.rank_bits(35), 3);
        assert_eq!(oracle.quantile_bits(0.0), Some(10));
        assert_eq!(oracle.quantile_bits(0.5), Some(30));
        assert_eq!(oracle.quantile_bits(1.0), Some(50));
    }

    #[test]
    fn typed_oracle_roundtrip() {
        let oracle = ExactOracle::from_values(&[-1.0f64, 0.0, 1.0]);
        assert_eq!(oracle.quantile::<f64>(0.5), Some(0.0));
    }

    #[test]
    fn empty_oracle() {
        let oracle = ExactOracle::from_bits(vec![]);
        assert_eq!(oracle.quantile_bits(0.5), None);
        assert_eq!(oracle.rank_error(0.5, 7), 0.0);
    }

    #[test]
    fn rank_error_of_exact_estimate_is_zero() {
        let oracle = ExactOracle::from_bits((0..1000).collect());
        for phi in [0.1, 0.5, 0.9] {
            let exact = oracle.quantile_bits(phi).unwrap();
            assert_eq!(oracle.rank_error(phi, exact), 0.0);
        }
    }

    #[test]
    fn rank_error_measures_displacement() {
        let oracle = ExactOracle::from_bits((0..1000).collect());
        // Estimating the 60th percentile with the true median: 10% off.
        let median = oracle.quantile_bits(0.5).unwrap();
        let err = oracle.rank_error(0.6, median);
        assert!((err - 0.1).abs() < 0.01, "err {err}");
    }

    #[test]
    fn accuracy_report_on_perfect_summary() {
        let bits: Vec<u64> = (0..500).collect();
        let summary = WeightedSummary::from_items(
            bits.iter().map(|&b| WeightedItem { value_bits: b, weight: 1 }).collect(),
        );
        let oracle = ExactOracle::from_bits(bits);
        let report = AccuracyReport::evaluate(&summary, &oracle, &phi_grid(9));
        assert_eq!(report.max_error(), 0.0);
        assert_eq!(report.rms_error(), 0.0);
    }

    #[test]
    fn phi_grid_is_interior_and_even() {
        let g = phi_grid(9);
        assert_eq!(g.len(), 9);
        assert!((g[4] - 0.5).abs() < 1e-12);
        assert!(g[0] > 0.0 && g[8] < 1.0);
    }
}
