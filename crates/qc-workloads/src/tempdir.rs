//! A std-only scratch-directory guard for tests.
//!
//! The test suites that exercise durable persistence each need a unique,
//! disposable on-disk directory. The usual answer is the `tempfile`
//! crate; this workspace builds without crates.io access, so [`TempDir`]
//! reimplements the 5% of it the suites use: create a uniquely named
//! directory under [`std::env::temp_dir`], hand out its path, and remove
//! the whole tree on drop.
//!
//! Uniqueness does not rely on randomness: the name combines the process
//! id (isolating concurrent test binaries) with a process-wide atomic
//! counter (isolating tests within one binary, including `cargo test`'s
//! default multi-threaded runner), and creation retries on collision with
//! a leftover directory from a previous crashed run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`], deleted
/// (recursively, best-effort) on drop.
///
/// ```
/// use qc_workloads::tempdir::TempDir;
///
/// let dir = TempDir::new("doc");
/// std::fs::write(dir.path().join("probe"), b"x").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    /// Disarmed by [`TempDir::keep`] so a failing test can leave its
    /// directory behind for inspection.
    delete_on_drop: bool,
}

impl TempDir {
    /// Create a fresh, empty scratch directory whose name starts with
    /// `prefix` (use the test name; it makes leaked directories
    /// attributable).
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — in a test that is the
    /// right failure mode, and it keeps every caller a one-liner.
    pub fn new(prefix: &str) -> Self {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        // A stale directory with our exact name can only be a leftover
        // from a crashed earlier run (pids recycle); advance the counter
        // past it rather than inheriting its contents.
        loop {
            let id = NEXT_ID.fetch_add(1, Relaxed);
            let path = base.join(format!("qc-{prefix}-{pid}-{id}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return TempDir { path, delete_on_drop: true },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("creating scratch dir {}: {e}", path.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disarm the drop-time deletion and return the path — for debugging
    /// a failing test by inspecting what it left on disk.
    pub fn keep(mut self) -> PathBuf {
        self.delete_on_drop = false;
        self.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if self.delete_on_drop {
            // Best-effort: a failure to clean /tmp must not turn a
            // passing test into a panicking one (especially during
            // unwinding from the real failure).
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("unit");
        let b = TempDir::new("unit");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        std::fs::create_dir(a.path().join("nested")).unwrap();
        std::fs::write(a.path().join("nested/file"), b"payload").unwrap();
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        drop(a);
        drop(b);
        assert!(!pa.exists(), "dropped TempDir must remove its tree");
        assert!(!pb.exists());
    }

    #[test]
    fn keep_disarms_deletion() {
        let dir = TempDir::new("keep");
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
