//! Workloads and measurement harness for the Quancurrent reproduction.
//!
//! Everything the benchmark suite (`qc-bench`) needs that is not a sketch:
//!
//! * [`streams`] — seeded synthetic stream generators (uniform, normal,
//!   Zipf-like, sorted, sawtooth, constant);
//! * [`exact`] — the brute-force quantiles oracle and accuracy metrics
//!   ("Exact CDF" in the paper's figures);
//! * [`topology`] — the simulated 4×8 NUMA testbed and fill-first thread
//!   placement of §5.1;
//! * [`harness`] — barrier-released multi-threaded throughput runners
//!   (update-only, query-only, mixed);
//! * [`stats`] — mean/σ/stderr over repeated runs (the paper averages 15);
//! * [`table`] — aligned console tables + CSV emission for every figure;
//! * [`tempdir`] — a std-only scratch-directory guard for the durability
//!   test suites (the workspace builds without crates.io, so no
//!   `tempfile`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exact;
pub mod harness;
pub mod stats;
pub mod streams;
pub mod table;
pub mod tempdir;
pub mod topology;

pub use exact::{phi_grid, AccuracyReport, ExactOracle};
pub use harness::{fixed_ops_throughput, format_ops, mixed_throughput, Throughput};
pub use stats::RunStats;
pub use streams::{Distribution, StreamGen};
pub use table::Table;
pub use tempdir::TempDir;
pub use topology::Topology;
