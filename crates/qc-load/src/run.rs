//! The load harness: writer/querier worker mixes driven against a live
//! server, self-sketched latencies, exact end-of-run accounting.
//!
//! Writers are open-loop UDP senders: each packs `records_per_datagram`
//! records of `values_per_record` values into one datagram (via
//! [`qc_ingest::DatagramBuilder`]) and fires it at the ingest daemon,
//! paced by a shared-rate [`TokenBucket`]
//! split across the writers. Queriers are closed-loop TCP clients
//! cycling quantile queries over the same keys. Every worker records its
//! per-op latency into its own [`qc_sequential::Sketch`] — the harness
//! measures the quantile store with the store's own estimator — and the
//! per-worker sketches merge into the report's percentiles.
//!
//! After the generation phase the harness **settles**: it polls the
//! server's `Metrics` frame until the daemon's drop accounting is
//! quiescent (every received datagram classified, queue empty), then
//! snapshots the exact counters into the report. UDP may drop datagrams
//! in the kernel before the daemon sees them; the report calls that out
//! separately (`kernel_dropped`) — the daemon's own identity stays exact
//! regardless.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use qc_ingest::DatagramBuilder;
use qc_sequential::Sketch;
use qc_server::Client;
use qc_workloads::streams::{Distribution, StreamGen};

use crate::bucket::TokenBucket;
use crate::report::{DaemonCounters, LatencyStats, LoadReport};

/// Harness parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The ingest daemon's UDP address.
    pub udp_addr: SocketAddr,
    /// The server's TCP address (queriers + metrics). `None` runs a
    /// write-only workload with no end-of-run counter fetch.
    pub tcp_addr: Option<SocketAddr>,
    /// Writer workers (UDP senders).
    pub writers: usize,
    /// Querier workers (TCP clients).
    pub queriers: usize,
    /// Distinct keys, named `<key_prefix>-<i>`.
    pub keys: usize,
    /// Key name prefix.
    pub key_prefix: String,
    /// Values per record.
    pub values_per_record: usize,
    /// Records per datagram.
    pub records_per_datagram: usize,
    /// Datagram size budget in bytes (records that do not fit roll into
    /// the next datagram).
    pub datagram_budget: usize,
    /// Total offered datagram rate across all writers; `None` offers as
    /// fast as the writers can send.
    pub rate_datagrams_per_sec: Option<f64>,
    /// Every Nth querier operation becomes a time-range query
    /// (`query_range` over the full event-time span) instead of a plain
    /// quantile query; `0` disables range queries.
    pub range_query_every: usize,
    /// Generation-phase duration.
    pub duration: Duration,
    /// Deterministic workload seed.
    pub seed: u64,
    /// Free-form context line copied into the report.
    pub context: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            udp_addr: "127.0.0.1:0".parse().expect("literal addr"),
            tcp_addr: None,
            writers: 4,
            queriers: 2,
            keys: 16,
            key_prefix: "load".to_string(),
            values_per_record: 32,
            records_per_datagram: 4,
            datagram_budget: 1400,
            rate_datagrams_per_sec: None,
            range_query_every: 0,
            duration: Duration::from_secs(2),
            seed: 0x10AD,
            context: String::new(),
        }
    }
}

struct WriterOutcome {
    datagrams: u64,
    records: u64,
    values: u64,
    send_errors: u64,
    latency: Sketch<f64>,
}

struct QuerierOutcome {
    queries: u64,
    range_queries: u64,
    errors: u64,
    latency: Sketch<f64>,
}

/// Drive one load run against a live server. Blocks for
/// `cfg.duration` plus the settling phase.
pub fn run(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let keys: Vec<String> =
        (0..cfg.keys.max(1)).map(|i| format!("{}-{i}", cfg.key_prefix)).collect();
    let store_updates_before = match cfg.tcp_addr {
        Some(addr) => {
            let mut client = Client::connect(addr)?;
            client.metrics().map_err(client_err)?.counter("store_updates")
        }
        None => None,
    };
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let (writer_outcomes, querier_outcomes) =
        std::thread::scope(|s| -> std::io::Result<(Vec<WriterOutcome>, Vec<QuerierOutcome>)> {
            let mut writer_handles = Vec::new();
            for w in 0..cfg.writers.max(1) {
                let keys = &keys;
                writer_handles.push(s.spawn(move || writer_loop(cfg, keys, w, deadline)));
            }
            let mut querier_handles = Vec::new();
            if let Some(tcp_addr) = cfg.tcp_addr {
                for q in 0..cfg.queriers {
                    let keys = &keys;
                    querier_handles
                        .push(s.spawn(move || querier_loop(cfg, tcp_addr, keys, q, deadline)));
                }
            }
            let mut writers = Vec::new();
            for handle in writer_handles {
                writers.push(handle.join().expect("writer worker must not panic")?);
            }
            let mut queriers = Vec::new();
            for handle in querier_handles {
                queriers.push(handle.join().expect("querier worker must not panic")?);
            }
            Ok((writers, queriers))
        })?;
    let elapsed = start.elapsed().as_secs_f64();

    let mut report = LoadReport {
        context: cfg.context.clone(),
        elapsed_secs: elapsed,
        writers: cfg.writers.max(1),
        queriers: if cfg.tcp_addr.is_some() { cfg.queriers } else { 0 },
        keys: keys.len(),
        values_per_record: cfg.values_per_record,
        records_per_datagram: cfg.records_per_datagram,
        target_datagram_rate: cfg.rate_datagrams_per_sec,
        cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..LoadReport::default()
    };
    let mut send_sketch: Option<Sketch<f64>> = None;
    for w in &writer_outcomes {
        report.datagrams_sent += w.datagrams;
        report.records_sent += w.records;
        report.values_sent += w.values;
        report.send_errors += w.send_errors;
        match &mut send_sketch {
            Some(sketch) => sketch.merge_from(&w.latency),
            None => send_sketch = Some(w.latency.clone()),
        }
    }
    if let Some(sketch) = &send_sketch {
        report.send_latency = LatencyStats::from_sketch(sketch);
    }
    let mut query_sketch: Option<Sketch<f64>> = None;
    for q in &querier_outcomes {
        report.queries_sent += q.queries;
        report.range_queries_sent += q.range_queries;
        report.query_errors += q.errors;
        match &mut query_sketch {
            Some(sketch) => sketch.merge_from(&q.latency),
            None => query_sketch = Some(q.latency.clone()),
        }
    }
    report.query_latency = query_sketch.as_ref().map(LatencyStats::from_sketch);
    if elapsed > 0.0 {
        report.achieved_datagram_rate = report.datagrams_sent as f64 / elapsed;
        report.achieved_value_rate = report.values_sent as f64 / elapsed;
        report.achieved_query_rate = report.queries_sent as f64 / elapsed;
    }

    if let Some(tcp_addr) = cfg.tcp_addr {
        let mut client = Client::connect(tcp_addr)?;
        let daemon = settle(&mut client)?;
        report.kernel_dropped = Some(report.datagrams_sent.saturating_sub(daemon.received));
        report.kernel_dropped_attributed =
            Some(daemon.seq_gaps.saturating_sub(daemon.seq_reordered));
        report.daemon = Some(daemon);
        let after = client.metrics().map_err(client_err)?.counter("store_updates");
        report.store_updates = match (store_updates_before, after) {
            (Some(before), Some(after)) => Some(after.saturating_sub(before)),
            (None, after) => after,
            _ => None,
        };
    }
    Ok(report)
}

fn writer_loop(
    cfg: &LoadConfig,
    keys: &[String],
    worker: usize,
    deadline: Instant,
) -> std::io::Result<WriterOutcome> {
    let bind: &str = if cfg.udp_addr.is_ipv4() { "0.0.0.0:0" } else { "[::]:0" };
    let socket = UdpSocket::bind(bind)?;
    socket.connect(cfg.udp_addr)?;
    let writers = cfg.writers.max(1);
    let mut bucket = cfg.rate_datagrams_per_sec.map(|rate| {
        let per_writer = (rate / writers as f64).max(0.001);
        TokenBucket::new(per_writer, (per_writer * 0.01).max(1.0), Instant::now())
    });
    let mut gen = StreamGen::new(
        Distribution::Uniform,
        cfg.seed ^ (worker as u64).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let mut latency = Sketch::<f64>::with_seed(256, cfg.seed ^ 0xA5A5 ^ worker as u64);
    // Sequenced (v2) datagrams: each writer socket is its own peer to the
    // daemon, so per-socket sequences starting at 0 give the receiver
    // exact per-peer gap accounting.
    let mut builder = DatagramBuilder::with_seq(cfg.datagram_budget, 0);
    let mut outcome = WriterOutcome {
        datagrams: 0,
        records: 0,
        values: 0,
        send_errors: 0,
        latency: Sketch::with_seed(256, 0),
    };
    let mut values = vec![0.0f64; cfg.values_per_record.max(1)];
    let mut next_key = worker; // offset so workers interleave key order
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if let Some(bucket) = &mut bucket {
            if let Err(wait) = bucket.try_take(1.0, now) {
                // Open loop: sleep only until the next token accrues (or
                // the deadline, whichever is sooner), never longer.
                let remaining = deadline.saturating_duration_since(now);
                std::thread::sleep(wait.min(remaining).min(Duration::from_millis(20)));
                continue;
            }
        }
        let t0 = Instant::now();
        let mut records = 0u64;
        let mut packed_values = 0u64;
        for _ in 0..cfg.records_per_datagram.max(1) {
            for v in values.iter_mut() {
                *v = gen.next_f64();
            }
            let key = &keys[next_key % keys.len()];
            next_key = next_key.wrapping_add(1);
            if builder.push(key, &values) {
                records += 1;
                packed_values += values.len() as u64;
            } else {
                // Budget full: ship what fits; the skipped record simply
                // lands in a later datagram's slot.
                break;
            }
        }
        let Some(bytes) = builder.finish() else { continue };
        match socket.send(&bytes) {
            Ok(_) => {
                outcome.datagrams += 1;
                outcome.records += records;
                outcome.values += packed_values;
                latency.update(t0.elapsed().as_secs_f64());
            }
            Err(_) => outcome.send_errors += 1,
        }
    }
    outcome.latency = latency;
    Ok(outcome)
}

fn querier_loop(
    cfg: &LoadConfig,
    tcp_addr: SocketAddr,
    keys: &[String],
    worker: usize,
    deadline: Instant,
) -> std::io::Result<QuerierOutcome> {
    const PHIS: [f64; 3] = [0.5, 0.99, 0.999];
    let mut client = Client::connect(tcp_addr)?;
    let mut latency = Sketch::<f64>::with_seed(256, cfg.seed ^ 0x5A5A ^ worker as u64);
    let mut outcome = QuerierOutcome {
        queries: 0,
        range_queries: 0,
        errors: 0,
        latency: Sketch::with_seed(256, 0),
    };
    let mut i = worker;
    let mut ops = 0usize;
    while Instant::now() < deadline {
        let key = &keys[i % keys.len()];
        let phi = PHIS[i % PHIS.len()];
        i = i.wrapping_add(1);
        ops = ops.wrapping_add(1);
        // Every Nth op exercises the windowed read path over the full
        // event-time span (an unwindowed server answers it as a plain
        // quantile query, so the mix is valid against either).
        let range = cfg.range_query_every > 0 && ops.is_multiple_of(cfg.range_query_every);
        let t0 = Instant::now();
        let result =
            if range { client.query_range(key, 0, u64::MAX, phi) } else { client.query(key, phi) };
        match result {
            Ok(_) => {
                outcome.queries += 1;
                if range {
                    outcome.range_queries += 1;
                }
                latency.update(t0.elapsed().as_secs_f64());
            }
            Err(_) => outcome.errors += 1,
        }
    }
    outcome.latency = latency;
    Ok(outcome)
}

/// Poll the `Metrics` frame until the daemon's accounting is quiescent:
/// the queue is empty and every received datagram has been classified.
/// Bounded at ~5 s; returns the last snapshot either way (the report's
/// `conserved` field tells the reader whether quiescence was reached).
fn settle(client: &mut Client) -> std::io::Result<DaemonCounters> {
    let mut last = DaemonCounters::default();
    for _ in 0..125 {
        let snap = client.metrics().map_err(client_err)?;
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        last = DaemonCounters {
            received: counter("ingest_datagrams"),
            applied_datagrams: counter("ingest_applied_datagrams"),
            applied_records: counter("ingest_applied_records"),
            applied_values: counter("ingest_applied_values"),
            dropped_queue: counter("ingest_dropped_queue"),
            shed: counter("ingest_shed"),
            dropped_decode: counter("ingest_dropped_decode"),
            dropped_oversized: counter("ingest_dropped_oversized"),
            circuit_opens: counter("ingest_circuit_opens"),
            seq_gaps: counter("ingest_seq_gaps"),
            seq_reordered: counter("ingest_seq_reordered"),
        };
        let depth = snap.gauge("ingest_queue_depth").unwrap_or(0);
        if depth == 0 && last.conserved() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    Ok(last)
}

fn client_err(e: qc_server::ClientError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}
