//! Token-bucket rate control for open-loop load generation.
//!
//! Open-loop means the *offered* rate is fixed by the clock, not by how
//! fast the system under test answers: tokens accrue with wall time at
//! the configured rate, a worker spends one per operation, and when the
//! bucket is dry the worker sleeps only until the next token — it never
//! slows down because the server did. That is the property that makes
//! overload experiments honest: a closed-loop generator self-throttles
//! exactly when the system saturates, hiding the drops this harness
//! exists to measure.
//!
//! The bucket is clock-injected (every method takes `now`) so the
//! arithmetic is unit-testable without sleeping.

use std::time::{Duration, Instant};

/// A token bucket: `rate` tokens per second accrue up to `burst`.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most `burst`
    /// tokens (both clamped to sane positive floors). The bucket starts
    /// full, so a worker may open with a burst.
    pub fn new(rate_per_sec: f64, burst: f64, now: Instant) -> Self {
        let rate = if rate_per_sec.is_finite() && rate_per_sec > 0.0 { rate_per_sec } else { 1.0 };
        let burst = if burst.is_finite() && burst >= 1.0 { burst } else { 1.0 };
        TokenBucket { rate, burst, tokens: burst, last: now }
    }

    /// Configured refill rate (tokens/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Spend `n` tokens if available. On refusal, returns the time to
    /// wait until `n` tokens will have accrued — the open-loop sleep.
    pub fn try_take(&mut self, n: f64, now: Instant) -> Result<(), Duration> {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            return Ok(());
        }
        let deficit = n - self.tokens;
        Err(Duration::from_secs_f64(deficit / self.rate))
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_then_meters_at_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 10.0, t0);
        // The initial burst drains instantly.
        for _ in 0..10 {
            assert!(b.try_take(1.0, t0).is_ok());
        }
        // Dry: the suggested wait is one token's worth.
        let wait = b.try_take(1.0, t0).unwrap_err();
        assert!((wait.as_secs_f64() - 0.01).abs() < 1e-9, "wait {wait:?}");
        // After exactly that wait, one token (and only one) is there.
        let t1 = t0 + wait;
        assert!(b.try_take(1.0, t1).is_ok());
        assert!(b.try_take(1.0, t1).is_err());
    }

    #[test]
    fn accrual_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000.0, 5.0, t0);
        for _ in 0..5 {
            assert!(b.try_take(1.0, t0).is_ok());
        }
        // A long idle period accrues only `burst` tokens, not rate×time.
        let t1 = t0 + Duration::from_secs(60);
        for _ in 0..5 {
            assert!(b.try_take(1.0, t1).is_ok());
        }
        assert!(b.try_take(1.0, t1).is_err());
    }

    #[test]
    fn long_run_rate_is_exact() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(50.0, 1.0, t0);
        let mut sent = 0u64;
        let mut now = t0;
        let end = t0 + Duration::from_secs(10);
        while now < end {
            match b.try_take(1.0, now) {
                Ok(()) => sent += 1,
                Err(wait) => now += wait,
            }
        }
        // 50/s for 10 s: 500 ± the initial burst token.
        assert!((499..=501).contains(&sent), "sent {sent}");
    }
}
