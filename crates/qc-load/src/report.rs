//! Machine-readable run reports.
//!
//! A `qc-load` run ends in one JSON document shaped like the committed
//! `BENCH_*.json` trajectory: what was offered, what was achieved, the
//! self-sketched latency percentiles, the daemon's exact drop accounting,
//! and the standing honesty caveats (CPU count, conservation verdict).
//! The JSON is hand-assembled — the workspace is `std`-only — and kept
//! strictly valid: strings are escaped, non-finite floats become `null`.

use qc_sequential::Sketch;

/// Latency percentiles derived from a [`qc_sequential::Sketch`] — the
/// harness measures itself with the same estimator it is loading.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Operations recorded.
    pub count: u64,
    /// Median, in seconds.
    pub p50: Option<f64>,
    /// 99th percentile, in seconds.
    pub p99: Option<f64>,
    /// 99.9th percentile, in seconds.
    pub p999: Option<f64>,
    /// Largest retained sample, in seconds.
    pub max: Option<f64>,
}

impl LatencyStats {
    /// Summarize a latency sketch (values in seconds).
    pub fn from_sketch(sketch: &Sketch<f64>) -> Self {
        LatencyStats {
            count: sketch.n(),
            p50: sketch.quantile(0.5),
            p99: sketch.quantile(0.99),
            p999: sketch.quantile(0.999),
            max: sketch.max_retained(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_s\": {}, \"p99_s\": {}, \"p999_s\": {}, \"max_s\": {}}}",
            self.count,
            opt_num(self.p50),
            opt_num(self.p99),
            opt_num(self.p999),
            opt_num(self.max)
        )
    }
}

/// The ingest daemon's counters at the end of the run, fetched over the
/// TCP `Metrics` frame — the exact drop accounting.
#[derive(Clone, Debug, Default)]
pub struct DaemonCounters {
    /// Datagrams the daemon received.
    pub received: u64,
    /// Datagrams fully applied.
    pub applied_datagrams: u64,
    /// Records inside applied datagrams.
    pub applied_records: u64,
    /// Values (stream weight) applied.
    pub applied_values: u64,
    /// Dropped: queue full or circuit shed.
    pub dropped_queue: u64,
    /// Subset of `dropped_queue` shed while the circuit was open.
    pub shed: u64,
    /// Dropped: failed the datagram codec.
    pub dropped_decode: u64,
    /// Dropped: longer than the daemon's size cap.
    pub dropped_oversized: u64,
    /// Circuit-open transitions during the run.
    pub circuit_opens: u64,
    /// Total sequence gap observed across sequenced peers (datagrams
    /// shipped but never received, plus provisional reorderings).
    pub seq_gaps: u64,
    /// Sequenced datagrams that arrived below the expected sequence —
    /// each converts one provisional gap back into a reordering.
    pub seq_reordered: u64,
}

impl DaemonCounters {
    /// The at-most-once conservation identity: every received datagram
    /// classified exactly once.
    pub fn conserved(&self) -> bool {
        self.received
            == self.applied_datagrams
                + self.dropped_queue
                + self.dropped_decode
                + self.dropped_oversized
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"received\": {}, \"applied_datagrams\": {}, \"applied_records\": {}, ",
                "\"applied_values\": {}, \"dropped_queue\": {}, \"shed\": {}, ",
                "\"dropped_decode\": {}, \"dropped_oversized\": {}, \"circuit_opens\": {}, ",
                "\"seq_gaps\": {}, \"seq_reordered\": {}, \"conserved\": {}}}"
            ),
            self.received,
            self.applied_datagrams,
            self.applied_records,
            self.applied_values,
            self.dropped_queue,
            self.shed,
            self.dropped_decode,
            self.dropped_oversized,
            self.circuit_opens,
            self.seq_gaps,
            self.seq_reordered,
            self.conserved()
        )
    }
}

/// Everything one run produced.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Free-form context line (what this run was for).
    pub context: String,
    /// Wall-clock duration of the generation phase, seconds.
    pub elapsed_secs: f64,
    /// Writer workers.
    pub writers: usize,
    /// Querier workers.
    pub queriers: usize,
    /// Distinct keys targeted.
    pub keys: usize,
    /// Values per record.
    pub values_per_record: usize,
    /// Records per datagram.
    pub records_per_datagram: usize,
    /// Offered datagram rate (None = unthrottled).
    pub target_datagram_rate: Option<f64>,
    /// Datagrams sent by the writers.
    pub datagrams_sent: u64,
    /// Records sent.
    pub records_sent: u64,
    /// Values sent.
    pub values_sent: u64,
    /// UDP send failures (should be zero on loopback).
    pub send_errors: u64,
    /// Achieved datagram rate over the run.
    pub achieved_datagram_rate: f64,
    /// Achieved value (weight) rate over the run.
    pub achieved_value_rate: f64,
    /// TCP queries issued (plain and range combined).
    pub queries_sent: u64,
    /// Subset of `queries_sent` issued as time-range queries.
    pub range_queries_sent: u64,
    /// TCP query failures.
    pub query_errors: u64,
    /// Achieved query rate over the run.
    pub achieved_query_rate: f64,
    /// Writer-side per-datagram send latency (build + sendto).
    pub send_latency: LatencyStats,
    /// Querier-side round-trip latency.
    pub query_latency: Option<LatencyStats>,
    /// Daemon counters at quiescence (None when no TCP endpoint was
    /// available to fetch them from).
    pub daemon: Option<DaemonCounters>,
    /// Datagrams lost before the daemon saw them (kernel socket-buffer
    /// drops: `datagrams_sent − daemon.received`). UDP is allowed to do
    /// this; the daemon's own accounting stays exact regardless.
    pub kernel_dropped: Option<u64>,
    /// The daemon's own attribution of pre-socket loss, computed from the
    /// writers' sequence numbers: `seq_gaps − seq_reordered`. Unlike
    /// `kernel_dropped` this needs no sender-side totals — a receiver
    /// alone can produce it — and the two agree at quiescence when every
    /// sender was sequenced.
    pub kernel_dropped_attributed: Option<u64>,
    /// Store `updates` counter delta across the run, when fetchable.
    pub store_updates: Option<u64>,
    /// CPUs visible to this process — the standing caveat: single-core
    /// boxes bound every rate below.
    pub cpus: usize,
}

impl LoadReport {
    /// Render the report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"harness\": \"qc-load\",\n");
        out.push_str(&format!("  \"context\": {},\n", esc(&self.context)));
        out.push_str(&format!("  \"elapsed_secs\": {},\n", num(self.elapsed_secs)));
        out.push_str(&format!(
            "  \"workload\": {{\"writers\": {}, \"queriers\": {}, \"keys\": {}, \"values_per_record\": {}, \"records_per_datagram\": {}, \"target_datagram_rate\": {}}},\n",
            self.writers,
            self.queriers,
            self.keys,
            self.values_per_record,
            self.records_per_datagram,
            opt_num(self.target_datagram_rate)
        ));
        out.push_str(&format!(
            "  \"sent\": {{\"datagrams\": {}, \"records\": {}, \"values\": {}, \"send_errors\": {}}},\n",
            self.datagrams_sent, self.records_sent, self.values_sent, self.send_errors
        ));
        out.push_str(&format!(
            "  \"achieved\": {{\"datagrams_per_s\": {}, \"values_per_s\": {}, \"queries_per_s\": {}}},\n",
            num(self.achieved_datagram_rate),
            num(self.achieved_value_rate),
            num(self.achieved_query_rate)
        ));
        out.push_str(&format!(
            "  \"queries\": {{\"sent\": {}, \"range\": {}, \"errors\": {}}},\n",
            self.queries_sent, self.range_queries_sent, self.query_errors
        ));
        out.push_str(&format!("  \"send_latency\": {},\n", self.send_latency.json()));
        out.push_str(&format!(
            "  \"query_latency\": {},\n",
            match &self.query_latency {
                Some(stats) => stats.json(),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(
            "  \"daemon\": {},\n",
            match &self.daemon {
                Some(daemon) => daemon.json(),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!("  \"kernel_dropped\": {},\n", opt_u64(self.kernel_dropped)));
        out.push_str(&format!(
            "  \"kernel_dropped_attributed\": {},\n",
            opt_u64(self.kernel_dropped_attributed)
        ));
        out.push_str(&format!("  \"store_updates\": {},\n", opt_u64(self.store_updates)));
        out.push_str(&format!("  \"cpus\": {},\n", self.cpus));
        out.push_str(&format!(
            "  \"caveat\": {}\n",
            esc(&format!(
                "latencies are self-sketched (qc_sequential::Sketch, k=256); {} CPU(s) visible — \
                 on a single-core box writers, processors, and the server time-slice one core, so \
                 rates bound the software overhead, not hardware capacity",
                self.cpus
            ))
        ));
        out.push_str("}\n");
        out
    }
}

/// JSON string escape.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number (non-finite → null, since JSON has no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal JSON well-formedness walker: enough to catch an escape
    /// or comma slip in the hand-assembled document without a serde dep.
    fn check_json(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        fn ws(bytes: &[u8], pos: &mut usize) {
            while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        }
        fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
            ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b'{') => {
                    *pos += 1;
                    ws(bytes, pos);
                    if bytes.get(*pos) == Some(&b'}') {
                        *pos += 1;
                        return Ok(());
                    }
                    loop {
                        ws(bytes, pos);
                        string(bytes, pos)?;
                        ws(bytes, pos);
                        if bytes.get(*pos) != Some(&b':') {
                            return Err(format!("expected ':' at {pos}"));
                        }
                        *pos += 1;
                        value(bytes, pos)?;
                        ws(bytes, pos);
                        match bytes.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b'}') => {
                                *pos += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {pos}")),
                        }
                    }
                }
                Some(b'"') => string(bytes, pos),
                Some(b't') => literal(bytes, pos, b"true"),
                Some(b'f') => literal(bytes, pos, b"false"),
                Some(b'n') => literal(bytes, pos, b"null"),
                Some(_) => number(bytes, pos),
                None => Err("unexpected end".into()),
            }
        }
        fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
            if bytes.get(*pos) != Some(&b'"') {
                return Err(format!("expected string at {pos}"));
            }
            *pos += 1;
            while let Some(&b) = bytes.get(*pos) {
                match b {
                    b'\\' => *pos += 2,
                    b'"' => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => *pos += 1,
                }
            }
            Err("unterminated string".into())
        }
        fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
            if bytes[*pos..].starts_with(lit) {
                *pos += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at {pos}"))
            }
        }
        fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
            let start = *pos;
            while let Some(&b) = bytes.get(*pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            if *pos == start {
                return Err(format!("expected number at {start}"));
            }
            Ok(())
        }
        value(bytes, &mut pos)?;
        ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(())
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut report = LoadReport {
            context: "test \"quoted\"\nline".into(),
            elapsed_secs: 1.25,
            writers: 4,
            queriers: 2,
            keys: 16,
            values_per_record: 32,
            records_per_datagram: 4,
            target_datagram_rate: Some(1000.0),
            datagrams_sent: 1234,
            cpus: 1,
            ..LoadReport::default()
        };
        report.send_latency = LatencyStats {
            count: 10,
            p50: Some(0.001),
            p99: Some(f64::NAN),
            p999: None,
            max: None,
        };
        report.daemon = Some(DaemonCounters {
            received: 10,
            applied_datagrams: 8,
            dropped_queue: 2,
            ..DaemonCounters::default()
        });
        let json = report.to_json();
        check_json(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
        // Non-finite floats must not leak.
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn conservation_identity() {
        let mut c = DaemonCounters {
            received: 100,
            applied_datagrams: 90,
            dropped_queue: 6,
            dropped_decode: 3,
            dropped_oversized: 1,
            ..DaemonCounters::default()
        };
        assert!(c.conserved());
        c.dropped_queue = 5;
        assert!(!c.conserved());
    }
}
