//! **qc-load** — the workload harness that proves the serving stack
//! against realistic traffic.
//!
//! Every perf PR needs an end-to-end workload to argue against; this
//! crate is that workload. It drives a live server through both front
//! doors at once — fire-and-forget UDP ingest (`qc-ingest` datagrams)
//! and request/response TCP queries — under open-loop rate control, and
//! reports what actually happened in machine-readable JSON that extends
//! the committed `BENCH_*.json` trajectory:
//!
//! * [`bucket`] — the token-bucket pacing that keeps the offered rate
//!   clock-driven (open loop), so saturation shows up as drops and
//!   latency, not as a silently slower generator;
//! * [`mod@run`] — the harness itself: N writers packing datagrams, M
//!   queriers cycling quantile reads, per-op latency recorded into
//!   [`qc_sequential::Sketch`] histograms (the store is measured with
//!   its own estimator), and a settling phase that fetches the ingest
//!   daemon's exact drop accounting over the `Metrics` frame;
//! * [`report`] — the JSON document: achieved rates, p50/p99/p999,
//!   datagram conservation verdict, kernel-drop callout, and the
//!   standing CPU-count honesty caveat.
//!
//! The `qc_load` binary wraps all of this behind a flag-style CLI and can
//! self-host a server (`--self-host`) for one-command smoke baselines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bucket;
pub mod report;
pub mod run;

pub use bucket::TokenBucket;
pub use report::{DaemonCounters, LatencyStats, LoadReport};
pub use run::{run, LoadConfig};
