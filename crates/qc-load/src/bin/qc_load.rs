//! The `qc-load` command-line harness.
//!
//! ```sh
//! # drive an external server
//! cargo run --release -p qc-load --bin qc_load -- \
//!     --udp 127.0.0.1:7072 --tcp 127.0.0.1:7071 --duration-ms 5000 --rate 20000
//!
//! # one-command smoke baseline: spin up a server+daemon in-process,
//! # load it, write the JSON report
//! cargo run --release -p qc-load --bin qc_load -- \
//!     --self-host --duration-ms 2000 --out BENCH_ingest_e2e.json
//! ```
//!
//! Flags (all `--name value` unless noted):
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--self-host` | off | start a server with UDP ingest in-process |
//! | `--udp ADDR` | — | ingest daemon address (required unless self-host) |
//! | `--tcp ADDR` | — | TCP server address (queriers + exact accounting) |
//! | `--writers N` | 4 | UDP writer workers |
//! | `--queriers N` | 2 | TCP querier workers |
//! | `--keys N` | 16 | distinct keys |
//! | `--values N` | 32 | values per record |
//! | `--records N` | 4 | records per datagram |
//! | `--rate N` | unthrottled | offered datagrams/s across all writers |
//! | `--range-every N` | 0 (off) | every Nth querier op is a time-range query |
//! | `--duration-ms N` | 2000 | generation phase length |
//! | `--seed N` | 0x10AD | workload seed |
//! | `--queue N` | 1024 | (self-host) daemon queue capacity |
//! | `--processors N` | 2 | (self-host) daemon processor threads |
//! | `--context STR` | auto | free-form line copied into the report |
//! | `--out PATH` | stdout | where the JSON report goes |
//!
//! Exit status: 0 on a clean run, 2 when the run completed but saw send
//! errors or the daemon's drop accounting failed to reconcile, 1 on
//! usage or connection errors.

use std::time::Duration;

use qc_load::{run, LoadConfig};
use qc_server::{IngestConfig, Server, ServerConfig};

fn main() {
    let mut cfg = LoadConfig::default();
    let mut self_host = false;
    let mut udp: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut out: Option<String> = None;
    let mut queue_capacity = 1024usize;
    let mut processors = 2usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match flag.as_str() {
            "--self-host" => self_host = true,
            "--udp" => udp = Some(value("--udp")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--writers" => cfg.writers = parse(&value("--writers")),
            "--queriers" => cfg.queriers = parse(&value("--queriers")),
            "--keys" => cfg.keys = parse(&value("--keys")),
            "--values" => cfg.values_per_record = parse(&value("--values")),
            "--records" => cfg.records_per_datagram = parse(&value("--records")),
            "--rate" => cfg.rate_datagrams_per_sec = Some(parse(&value("--rate"))),
            "--range-every" => cfg.range_query_every = parse(&value("--range-every")),
            "--duration-ms" => {
                cfg.duration = Duration::from_millis(parse(&value("--duration-ms")));
            }
            "--seed" => cfg.seed = parse(&value("--seed")),
            "--queue" => queue_capacity = parse(&value("--queue")),
            "--processors" => processors = parse(&value("--processors")),
            "--context" => cfg.context = value("--context"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!("flags: --self-host | --udp ADDR [--tcp ADDR]");
                eprintln!(
                    "       --writers N --queriers N --keys N --values N --records N \
                     --rate N --range-every N --duration-ms N --seed N --queue N \
                     --processors N --context STR --out PATH"
                );
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }

    // Self-hosting keeps the server handle alive for the whole run, then
    // tears the stack down gracefully (ingest severed first, queue
    // drained) before the report is written.
    let hosted = if self_host {
        let server_cfg = ServerConfig {
            ingest: Some(
                IngestConfig::default()
                    .bind("127.0.0.1:0")
                    .processors(processors)
                    .queue_capacity(queue_capacity),
            ),
            ..ServerConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", server_cfg)
            .unwrap_or_else(|e| die(&format!("self-host bind failed: {e}")));
        cfg.udp_addr = handle.ingest_addr().expect("self-host always enables ingest");
        cfg.tcp_addr = Some(handle.local_addr());
        Some(handle)
    } else {
        let udp = udp.unwrap_or_else(|| die("--udp is required without --self-host"));
        cfg.udp_addr = udp.parse().unwrap_or_else(|e| die(&format!("bad --udp {udp}: {e}")));
        cfg.tcp_addr =
            tcp.map(|t| t.parse().unwrap_or_else(|e| die(&format!("bad --tcp {t}: {e}"))));
        None
    };
    if cfg.context.is_empty() {
        cfg.context = if self_host {
            "qc-load self-hosted smoke run".to_string()
        } else {
            format!("qc-load run against {}", cfg.udp_addr)
        };
    }

    let report = run(&cfg).unwrap_or_else(|e| die(&format!("load run failed: {e}")));
    if let Some(handle) = hosted {
        handle.shutdown();
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }
    if report.send_errors > 0 || report.daemon.as_ref().is_some_and(|d| !d.conserved()) {
        std::process::exit(2);
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("cannot parse {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("qc-load: {msg}");
    std::process::exit(1)
}
