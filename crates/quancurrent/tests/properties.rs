//! Property-based tests: single-threaded Quancurrent must uphold the same
//! estimator laws as the sequential sketch (the concurrency machinery
//! degenerates to it when one thread drives everything).

use proptest::prelude::*;
use qc_common::Summary;
use quancurrent::Quancurrent;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Visible stream + buffers + local residue == pushed, for arbitrary
    /// (k, b, n).
    #[test]
    fn conservation_for_arbitrary_parameters(
        k in prop::sample::select(vec![2usize, 4, 8, 16]),
        b_pow in 0u32..4, // b ∈ {1,2,4,8}, always divides 2k
        n in 0u64..3000,
        seed in any::<u64>(),
    ) {
        let b = (1usize << b_pow).min(2 * k);
        let sketch = Quancurrent::<u64>::builder().k(k).b(b).seed(seed).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i);
        }
        let residue = updater.pending().len() as u64;
        prop_assert_eq!(
            sketch.stream_len() + sketch.buffered_len() as u64 + residue,
            n
        );
        // Quiescent summary weight equals levels + G&S.
        prop_assert_eq!(
            sketch.quiescent_summary().stream_len(),
            sketch.stream_len() + sketch.buffered_len() as u64
        );
    }

    /// Estimates returned by the snapshot are always values that were
    /// actually ingested.
    #[test]
    fn estimates_come_from_the_stream(
        n in 64u64..2048,
        seed in any::<u64>(),
    ) {
        let k = 8;
        let sketch = Quancurrent::<u64>::builder().k(k).b(4).seed(seed).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 12);
        }
        if sketch.stream_len() == 0 {
            return Ok(()); // everything still buffered: nothing to check
        }
        let mut handle = sketch.query_handle();
        for phi in [0.0, 0.5, 1.0] {
            let est = handle.query(phi).unwrap();
            // Reconstruct membership: est must be one of the pushed keys.
            let member = (0..n).any(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 12 == est);
            prop_assert!(member, "estimate {est} never ingested");
        }
    }

    /// Quantiles are monotone in φ for any snapshot.
    #[test]
    fn quantile_monotone_in_phi(
        n in 128u64..4096,
        seed in any::<u64>(),
    ) {
        let sketch = Quancurrent::<u64>::builder().k(16).b(8).seed(seed).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i % 257);
        }
        if sketch.stream_len() == 0 {
            return Ok(());
        }
        let mut handle = sketch.query_handle();
        let phis = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let estimates = handle.quantiles(&phis);
        for pair in estimates.windows(2) {
            prop_assert!(pair[0].unwrap() <= pair[1].unwrap());
        }
    }

    /// The relaxation bound formula dominates the observed lag for every
    /// parameter combination (single-threaded: N = 1).
    #[test]
    fn observed_lag_within_formula(
        k in prop::sample::select(vec![2usize, 4, 8, 32]),
        b_pow in 0u32..4,
        n in 0u64..5000,
    ) {
        let b = (1usize << b_pow).min(2 * k);
        let sketch = Quancurrent::<u64>::builder().k(k).b(b).seed(1).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i);
        }
        let lag = n - sketch.stream_len();
        prop_assert!(lag <= sketch.relaxation_bound(1),
            "lag {} > bound {}", lag, sketch.relaxation_bound(1));
    }
}

/// Deterministic accuracy check against a brute-force oracle at several k.
#[test]
fn rank_error_shrinks_with_k() {
    let n = 60_000u64;
    let mut errors = Vec::new();
    for &k in &[16usize, 64, 256] {
        let sketch = Quancurrent::<u64>::builder().k(k).b(8).seed(99).build();
        let mut updater = sketch.updater();
        let mut all: Vec<u64> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let x = i.wrapping_mul(6364136223846793005).rotate_left(17);
            all.push(x);
            updater.update(x);
        }
        all.sort_unstable();
        let mut handle = sketch.query_handle();
        let mut worst: f64 = 0.0;
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let est = handle.query(phi).unwrap();
            let true_rank = all.partition_point(|&v| v < est) as f64;
            worst = worst.max((true_rank - phi * n as f64).abs() / n as f64);
        }
        errors.push(worst);
    }
    assert!(errors[2] <= errors[0], "error should not grow with k: {errors:?}");
    assert!(errors[2] < 0.02, "k=256 error too large: {errors:?}");
}
