//! Concurrency tests of the full sketch: the structural invariants that
//! must hold regardless of scheduling.

use quancurrent::Quancurrent;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Barrier;

/// Holes duplicate and drop *values*, never counts: after quiescence,
/// levels + Gather&Sort buffers + thread-local residue account for every
/// update exactly.
#[test]
fn stream_size_accounting_is_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 40_000;

    let sketch =
        Quancurrent::<u64>::builder().k(64).b(8).numa_nodes(2).threads_per_node(4).seed(7).build();
    let barrier = Barrier::new(THREADS);

    let residue: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let mut updater = sketch.updater();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        updater.update(t * PER_THREAD + i);
                    }
                    updater.pending().len() as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let total = THREADS as u64 * PER_THREAD;
    let in_levels = sketch.stream_len();
    let in_gs = sketch.buffered_len() as u64;
    assert_eq!(
        in_levels + in_gs + residue,
        total,
        "levels({in_levels}) + gather&sort({in_gs}) + locals({residue}) must equal {total}"
    );

    // The quiescent summary covers everything but thread-local residue.
    let summary = sketch.quiescent_summary();
    use qc_common::Summary;
    assert_eq!(summary.stream_len(), in_levels + in_gs);
}

/// The lag between updates issued and updates visible to queries is bounded
/// by r = 4kS + (N−S)b at every quiescent point.
#[test]
fn relaxation_bound_is_honored() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 10_000;

    let sketch = Quancurrent::<u64>::builder().k(32).b(4).numa_nodes(1).seed(3).build();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    updater.update(t * PER_THREAD + i);
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    let visible = sketch.stream_len();
    let r = sketch.relaxation_bound(THREADS);
    assert!(total - visible <= r, "unpropagated {} exceeds relaxation bound {r}", total - visible);
}

/// Queries running against concurrent updates must always observe a
/// consistent snapshot: monotone stream sizes and exact weight accounting.
#[test]
fn queries_observe_monotone_consistent_snapshots() {
    const UPDATERS: usize = 4;
    const QUERIES: usize = 3;
    const PER_THREAD: u64 = 30_000;

    let sketch = Quancurrent::<u64>::builder().k(16).b(4).rho(0.0).seed(11).build();
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(UPDATERS + QUERIES);

    std::thread::scope(|s| {
        for _ in 0..QUERIES {
            let mut handle = sketch.query_handle();
            let barrier = &barrier;
            let stop = &stop;
            s.spawn(move || {
                barrier.wait();
                let mut last_n = 0u64;
                let mut observed = 0u64;
                while !stop.load(SeqCst) {
                    let _ = handle.query(0.5);
                    let n = handle.cached_stream_len();
                    assert!(n >= last_n, "snapshot stream size went backwards: {n} < {last_n}");
                    assert_eq!(
                        handle.cached_tritmap().stream_size(16),
                        n,
                        "myTrit must describe the snapshot exactly"
                    );
                    last_n = n;
                    observed += 1;
                }
                assert!(observed > 0);
            });
        }

        for t in 0..UPDATERS as u64 {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    updater.update(t * PER_THREAD + i);
                }
            });
        }

        // Let the updaters finish, then stop the queriers.
        // (Scoped threads join automatically; signal stop from a watcher.)
        s.spawn(|| {
            // Spin until all updates are visible or buffered.
            loop {
                let seen = sketch.stream_len() + sketch.buffered_len() as u64;
                if seen + (UPDATERS as u64 * 4) >= UPDATERS as u64 * PER_THREAD {
                    break;
                }
                std::thread::yield_now();
            }
            stop.store(true, SeqCst);
        });
    });
}

/// All memory churned by propagation is reclaimed: after a long run and
/// teardown-free quiescence, the IBR domain holds no more than a handful of
/// protected stragglers.
#[test]
fn propagation_memory_is_reclaimed() {
    let sketch = Quancurrent::<u64>::builder().k(16).b(4).seed(13).build();
    {
        let mut updater = sketch.updater();
        for i in 0..200_000u64 {
            updater.update(i);
        }
        drop(updater);
    }
    let (domain, descriptor_bytes) = sketch.memory_stats();
    sketch.stats();
    // Every batch allocates one 2k block; every merge another. All but the
    // currently-linked level arrays must be retired and reclaimed.
    let live_levels = 32u64; // generous bound on linked arrays
    assert!(domain.retired_pending <= live_levels, "unreclaimed blocks piling up: {domain:?}");
    // Descriptor arena: one per batch + one per propagation, never freed
    // until drop (documented); sanity-check the bound.
    let stats = sketch.stats();
    let max_descriptors = stats.batches + stats.propagations + stats.dcas_retries + 16;
    assert!(
        (descriptor_bytes as u64) <= max_descriptors * 1024,
        "descriptor arena larger than expected: {descriptor_bytes} bytes"
    );
}

/// Concurrent updates from multiple NUMA nodes exercise concurrent
/// propagation of different batches (Figure 5); the final distribution must
/// still be sane.
#[test]
fn concurrent_propagation_preserves_distribution() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let sketch = Quancurrent::<u64>::builder()
        .k(128)
        .b(16)
        .numa_nodes(4)
        .threads_per_node(2)
        .seed(17)
        .build();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                // Interleaved congruence classes: every thread covers the
                // full value range uniformly.
                for i in 0..PER_THREAD {
                    updater.update(i * THREADS as u64 + t);
                }
            });
        }
    });

    let n = THREADS as u64 * PER_THREAD;
    let mut handle = sketch.query_handle();
    for (phi, slack) in [(0.1, 0.05), (0.5, 0.05), (0.9, 0.05)] {
        let est = handle.query(phi).unwrap() as f64;
        let expected = phi * n as f64;
        let err = (est - expected).abs() / n as f64;
        assert!(err < slack, "phi={phi}: estimate {est} vs {expected} (err {err})");
    }

    let stats = sketch.stats();
    assert!(stats.batches > 0);
    assert!(stats.merges > 0, "long run must exercise the merge path");
    // §4.1: expected holes per batch ≤ 2.8 — allow generous slack for the
    // CI scheduler while still catching systematically broken hand-off.
    assert!(
        stats.holes_per_batch() < 16.0,
        "holes per batch {} absurdly high",
        stats.holes_per_batch()
    );
}

/// Handles can be created and dropped freely while others work.
#[test]
fn handle_churn_is_safe() {
    let sketch = Quancurrent::<f64>::builder().k(8).b(2).seed(23).build();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| {
            let mut updater = sketch.updater();
            for i in 0..100_000 {
                updater.update(i as f64);
            }
            stop.store(true, SeqCst);
        });

        s.spawn(|| {
            while !stop.load(SeqCst) {
                let mut h = sketch.query_handle();
                let _ = h.query(0.25);
                drop(h);
                let mut u = sketch.updater_on(0);
                u.update(1.0);
                drop(u); // residue in the local buffer is dropped with it
            }
        });
    });

    // No panic and a sane final state is the assertion.
    assert!(sketch.stream_len() > 0);
}
