//! Property tests of the tritmap state machine through the public API:
//! random workloads must leave the sketch in a state whose tritmap is a
//! legal composition of the transition rules, with exact size accounting.

use proptest::prelude::*;
use quancurrent::{Quancurrent, Tritmap, MAX_LEVEL};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any single-threaded workload, the visible tritmap is
    /// quiescent-legal: no level is in the transient "2" state (every
    /// propagation runs to completion before `update` returns), and the
    /// digits reproduce the stream size.
    #[test]
    fn quiescent_tritmap_is_legal(
        k in prop::sample::select(vec![2usize, 4, 8]),
        n in 0u64..6000,
        seed in any::<u64>(),
    ) {
        let sketch = Quancurrent::<u64>::builder().k(k).b(2).seed(seed).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i);
        }
        let visible = sketch.stream_len();
        // Reconstruct the tritmap from the stream size: visible is a sum
        // of c_i · k · 2^i with c_i ∈ {0, 1, 2}; check digits directly.
        let tm = current_tritmap(&sketch);
        for i in 0..MAX_LEVEL {
            let trit = tm.trit(i);
            prop_assert!(trit <= 2);
            // Quiescent level 0 is never left in state 1 (k elements):
            // batches enter it with 2k and leave it empty.
            if i == 0 {
                prop_assert_ne!(trit, 1, "level 0 cannot hold k elements");
            }
        }
        prop_assert_eq!(tm.stream_size(k), visible);
        // Quiescent: propagation always runs until an empty level, so at
        // most ONE level may be mid-state "2"… in fact none, because
        // update() returns only after propagate() finishes.
        let twos = (0..MAX_LEVEL).filter(|&i| tm.trit(i) == 2).count();
        prop_assert_eq!(twos, 0, "quiescent sketch with in-propagation level: {:?}", tm);
    }

    /// The visible stream size is always a multiple of 2k (batches are
    /// all-or-nothing).
    #[test]
    fn stream_size_is_batch_granular(
        k in prop::sample::select(vec![2usize, 4, 16]),
        n in 0u64..5000,
    ) {
        let sketch = Quancurrent::<u64>::builder().k(k).b(1).seed(1).build();
        let mut updater = sketch.updater();
        for i in 0..n {
            updater.update(i);
        }
        prop_assert_eq!(sketch.stream_len() % (2 * k as u64), 0);
    }
}

/// Read the tritmap through the public stats/stream APIs: stream size is
/// authoritative; digits come from a fresh snapshot's cached tritmap.
fn current_tritmap(sketch: &Quancurrent<u64>) -> Tritmap {
    let mut handle = sketch.query_handle();
    let _ = handle.query(0.5);
    handle.cached_tritmap()
}

/// Deterministic digit check against hand-computed values: 5 batches of
/// 2k at k=4 go through the Figure 3 / Figure 5 cascade.
#[test]
fn five_batches_land_in_binary_positions() {
    let k = 4;
    let sketch = Quancurrent::<u64>::builder().k(k).b(2).seed(3).build();
    let mut updater = sketch.updater();
    // 5 batches = 10k elements = 40 updates.
    for i in 0..(10 * k as u64) {
        updater.update(i);
    }
    // 5 batches counted in binary across levels 1..: 5 = 101₂ ⇒ levels 1
    // and 3 hold k-weight... concretely n = 5·2k and the tritmap must
    // represent exactly that.
    let mut handle = sketch.query_handle();
    let _ = handle.query(0.5);
    let tm = handle.cached_tritmap();
    assert_eq!(tm.stream_size(k), 10 * k as u64);
    assert_eq!(tm.trit(0), 0);
    // 5 batches: batch pairs merge upward — final occupancy is the binary
    // representation of 5 over levels 1..=3: trits (1,0,1) at levels 1,2,3
    // each holding k elements of weight 2,4,8: 2k + 0 + 8k = 10k ✓.
    assert_eq!(tm.trit(1), 1);
    assert_eq!(tm.trit(2), 0);
    assert_eq!(tm.trit(3), 1);
}
