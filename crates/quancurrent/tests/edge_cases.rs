//! Boundary configurations and awkward call patterns.

use quancurrent::Quancurrent;

/// b = 2k: every local flush fills a whole Gather&Sort buffer, so the
/// flusher is always the batch owner — the degenerate single-region case
/// of the holes analysis (j = 1 only).
#[test]
fn local_buffer_equal_to_shared_buffer() {
    let k = 8;
    let sketch = Quancurrent::<u64>::builder().k(k).b(2 * k).seed(1).build();
    let mut updater = sketch.updater();
    for i in 0..(8 * k as u64) {
        updater.update(i);
    }
    assert_eq!(sketch.stream_len(), 8 * k as u64);
    let stats = sketch.stats();
    assert_eq!(stats.batches, 4);
    assert_eq!(stats.holes, 0, "single-writer rounds cannot produce holes");
}

/// The minimal legal sketch: k = 2, b = 1.
#[test]
fn minimal_k_and_b() {
    let sketch = Quancurrent::<u64>::builder().k(2).b(1).seed(2).build();
    let mut updater = sketch.updater();
    for i in 0..10_000u64 {
        updater.update(i);
    }
    let mut handle = sketch.query_handle();
    let m = handle.query(0.5).unwrap();
    // k=2 is wildly inaccurate by design, but the answer must be a stream
    // value and the ordering laws must hold.
    assert!(m < 10_000);
    let lo = handle.query(0.0).unwrap();
    let hi = handle.query(1.0).unwrap();
    assert!(lo <= m && m <= hi);
}

#[test]
#[should_panic(expected = "out of range")]
fn updater_on_invalid_node_panics() {
    let sketch = Quancurrent::<u64>::builder().k(4).b(2).numa_nodes(2).build();
    let _ = sketch.updater_on(2);
}

/// Queries against a sketch whose data is entirely buffered (no batch
/// yet) see an empty stream — the documented relaxation.
#[test]
fn fully_buffered_stream_is_invisible() {
    let k = 64;
    let sketch = Quancurrent::<u64>::builder().k(k).b(4).seed(3).build();
    let mut updater = sketch.updater();
    for i in 0..(2 * k as u64 - 4) {
        updater.update(i); // one element short of a full G&S buffer
    }
    assert_eq!(sketch.stream_len(), 0);
    let mut handle = sketch.query_handle();
    assert_eq!(handle.query(0.5), None);
    // The quiescent extension sees them.
    use qc_common::Summary;
    assert_eq!(sketch.quiescent_summary().stream_len(), 2 * k as u64 - 4);
}

/// Many short-lived sketches: no leaks, no slot exhaustion across
/// repeated construction/teardown.
#[test]
fn repeated_construction_teardown() {
    for round in 0..50 {
        let sketch = Quancurrent::<f64>::builder().k(16).b(4).seed(round).build();
        let mut updater = sketch.updater();
        for i in 0..5_000 {
            updater.update(i as f64);
        }
        let mut handle = sketch.query_handle();
        let _ = handle.query(0.5);
        // implicit drop of everything
    }
}

/// Interleaved updater creation and destruction while another updater
/// keeps the same Gather&Sort unit busy.
#[test]
fn updater_churn_on_shared_node() {
    let sketch = Quancurrent::<u64>::builder().k(16).b(2).seed(7).build();
    let mut persistent = sketch.updater_on(0);
    for round in 0..200u64 {
        let mut transient = sketch.updater_on(0);
        for i in 0..31 {
            persistent.update(round * 100 + i);
            transient.update(round * 100 + 50 + i);
        }
        // transient drops with residue in its local buffer — allowed; the
        // residue is simply lost (documented: handles own their buffers).
    }
    // Conservation among *completed* hand-offs still holds: whatever made
    // it into G&S or the levels is a multiple of b.
    let visible = sketch.stream_len() + sketch.buffered_len() as u64;
    assert_eq!(visible % 2, 0, "partial b-blocks can never enter the shared state");
}

/// Zero-query handles, query-before-update, duplicate handles — nothing
/// panics, everything stays coherent.
#[test]
fn handle_lifecycle_odds_and_ends() {
    let sketch = Quancurrent::<i64>::builder().k(8).b(2).seed(11).build();
    let _unused_updater = sketch.updater();
    let mut h1 = sketch.query_handle();
    let mut h2 = sketch.query_handle();
    assert_eq!(h1.query(0.5), None);
    assert_eq!(h2.rank(0), 0);
    assert_eq!(h1.cdf(&[-1, 0, 1]), vec![0.0, 0.0, 0.0]);
    let mut updater = sketch.updater();
    for i in -500..500i64 {
        updater.update(i);
    }
    if sketch.stream_len() > 0 {
        let r_neg = h1.rank(-400);
        let r_pos = h1.rank(400);
        assert!(r_neg < r_pos);
    }
}

/// Negative and extreme f64 values flow through the whole pipeline.
#[test]
fn extreme_float_values() {
    let sketch = Quancurrent::<f64>::builder().k(16).b(2).seed(13).build();
    let mut updater = sketch.updater();
    let extremes = [
        f64::MIN,
        -1e300,
        -1.0,
        -f64::MIN_POSITIVE,
        -0.0,
        0.0,
        f64::MIN_POSITIVE,
        1.0,
        1e300,
        f64::MAX,
    ];
    for _ in 0..200 {
        for &x in &extremes {
            updater.update(x);
        }
    }
    let mut handle = sketch.query_handle();
    let lo = handle.query(0.0).unwrap();
    let hi = handle.query(1.0).unwrap();
    assert_eq!(lo, f64::MIN);
    assert_eq!(hi, f64::MAX);
    let mid = handle.query(0.5).unwrap();
    assert!((-1.0..=1.0).contains(&mid), "median of symmetric extremes: {mid}");
}

/// The per-region hole histogram is consistent with the aggregate
/// counter and has the right shape.
#[test]
fn hole_region_histogram_matches_total() {
    let k = 16;
    let b = 4;
    let sketch = Quancurrent::<u64>::builder().k(k).b(b).seed(19).build();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut updater = sketch.updater();
            s.spawn(move || {
                for i in 0..50_000 {
                    updater.update(t * 50_000 + i);
                }
            });
        }
    });
    let histogram = sketch.hole_region_histogram();
    assert_eq!(histogram.len(), 2 * k / b);
    assert_eq!(
        histogram.iter().sum::<u64>(),
        sketch.stats().holes,
        "region histogram must partition the hole count"
    );
}

/// Stats counters stay coherent across the whole lifecycle.
#[test]
fn stats_arithmetic_is_consistent() {
    let k = 32;
    let sketch = Quancurrent::<u64>::builder().k(k).b(8).seed(17).build();
    let mut updater = sketch.updater();
    for i in 0..100_000u64 {
        updater.update(i);
    }
    let stats = sketch.stats();
    assert_eq!(stats.batches * 2 * k as u64, sketch.stream_len());
    assert!(stats.propagations >= stats.batches, "each batch propagates at least once");
    assert!(stats.merges <= stats.propagations);
    assert_eq!(stats.cache_hits + stats.cache_misses, 0, "no queries ran");
}
