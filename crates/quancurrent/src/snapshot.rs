//! Stage "query": atomic snapshot collection (Algorithm 5, lines 52–65).
//!
//! The collect is a double-collect on the tritmap: read `tm1`, read all
//! level pointers, read `tm2`; retry until `tm1` and `tm2` represent equal
//! stream sizes. Because the tritmap is monotone (Lemma 8), equal sizes
//! imply the *same* stream (Lemma 1), and the levels read in between can
//! reconstruct exactly that stream (Lemma 2).
//!
//! Reconstruction walks the collected levels **top-down**, adding a level
//! only while its contribution fits in the remaining stream-size budget and
//! stopping the moment the budget is exhausted. This is what excludes
//! stale or duplicated arrays read mid-propagation (Lemmas 3–4): an array
//! whose elements were already merged into a higher level no longer fits
//! once that higher level is accounted.

use qc_common::summary::WeightedSummary;
use qc_reclaim::{LocalHandle, Shared};

use crate::config::MAX_LEVEL;
use crate::sketch::SketchShared;
use crate::stats::Counters;
use crate::tritmap::Tritmap;

/// A consistent copy of the sketch's levels.
pub(crate) struct SnapshotData {
    /// Stream size represented (equals `my_tritmap.stream_size(k)`).
    pub(crate) n: u64,
    /// The tritmap describing which levels the snapshot retained
    /// (Algorithm 5's `myTrit`).
    pub(crate) my_tritmap: Tritmap,
    /// Owned copies of the retained level arrays with their weights,
    /// highest level first.
    pub(crate) parts: Vec<(Vec<u64>, u64)>,
}

impl SnapshotData {
    /// Build the queryable weighted summary.
    pub(crate) fn into_summary(self) -> WeightedSummary {
        WeightedSummary::from_parts(self.parts.iter().map(|(v, w)| (&v[..], *w)))
    }
}

/// Collect an atomic snapshot of the levels (Algorithm 5, lines 52–65).
pub(crate) fn build_snapshot(shared: &SketchShared, reclaim: &LocalHandle) -> SnapshotData {
    let k = shared.cfg.k;
    let guard = reclaim.pin();
    loop {
        // Line 53: first tritmap read.
        let tm1 = Tritmap(qc_mwcas::read(&shared.tritmap, |w| guard.protect(|| w.load_raw())));
        let n1 = tm1.stream_size(k);

        // Line 54: read levels 0..MAX_LEVEL (each pointer read resolves
        // in-flight DCAS descriptors and is era-protected, so the arrays
        // stay alive until the guard drops).
        let mut raws = [0u64; MAX_LEVEL];
        for (i, raw) in raws.iter_mut().enumerate() {
            *raw = qc_mwcas::read(&shared.levels[i], |w| guard.protect(|| w.load_raw()));
        }

        // Line 55–56: second tritmap read; equal stream sizes mean equal
        // streams (monotonicity), so the levels in between are usable.
        let tm2 = Tritmap(qc_mwcas::read(&shared.tritmap, |w| guard.protect(|| w.load_raw())));
        if n1 != tm2.stream_size(k) {
            Counters::bump(&shared.counters.snapshot_retries);
            continue;
        }

        // Lines 57–64: top-down reconstruction under the size budget.
        // SAFETY: every raw came from an era-protected read under `guard`,
        // which is still pinned — the blocks cannot have been reclaimed.
        let sizes: [usize; MAX_LEVEL] = std::array::from_fn(|i| {
            if raws[i] == 0 {
                0
            } else {
                unsafe { Shared::<Vec<u64>>::from_raw(raws[i]).deref() }.len()
            }
        });

        let Some(plan) = plan_reconstruction(n1, &sizes, k) else {
            // Lemma 5 proves this cannot happen for a validated collect;
            // keep the retry as a defensive measure (it would indicate a
            // bug, which the debug assertion surfaces in tests).
            debug_assert!(false, "snapshot reconstruction missed budget: {tm1:?}");
            Counters::bump(&shared.counters.snapshot_retries);
            continue;
        };

        let mut parts: Vec<(Vec<u64>, u64)> = Vec::new();
        for i in (0..MAX_LEVEL).rev() {
            if plan.include[i] {
                // SAFETY: as above — still under the same pinned guard.
                let arr: &Vec<u64> = unsafe { Shared::<Vec<u64>>::from_raw(raws[i]).deref() };
                parts.push((arr.clone(), 1u64 << i));
            }
        }

        Counters::bump(&shared.counters.snapshots_built);
        return SnapshotData { n: n1, my_tritmap: Tritmap::from_trits(&plan.trits), parts };
    }
}

/// The outcome of Algorithm 5's top-down selection.
pub(crate) struct ReconstructionPlan {
    /// Which collected levels enter the snapshot.
    pub(crate) include: [bool; MAX_LEVEL],
    /// The `myTrit` digits describing the retained levels.
    pub(crate) trits: [u8; MAX_LEVEL],
}

/// Pure form of Algorithm 5, lines 57–64: given the stream-size budget `n`
/// (from the validated tritmap) and the observed per-level array sizes,
/// pick levels top-down while they fit; succeed iff the budget is met
/// exactly.
///
/// Factored out of [`build_snapshot`] so the selection logic can be
/// property-tested against a model of all reachable mid-propagation
/// states (see the tests below and `tests/` of this crate).
pub(crate) fn plan_reconstruction(
    n: u64,
    sizes: &[usize; MAX_LEVEL],
    k: usize,
) -> Option<ReconstructionPlan> {
    let mut include = [false; MAX_LEVEL];
    let mut trits = [0u8; MAX_LEVEL];
    let mut acc = 0u64;
    for i in (0..MAX_LEVEL).rev() {
        let size = sizes[i] as u64;
        if size == 0 {
            continue;
        }
        let contribution = size * (1u64 << i);
        if acc + contribution <= n {
            include[i] = true;
            trits[i] = (sizes[i] / k) as u8;
            acc += contribution;
        }
        if acc == n {
            break;
        }
    }
    (acc == n).then_some(ReconstructionPlan { include, trits })
}

#[cfg(test)]
mod model_tests {
    //! Model-check of Algorithm 5's selection against the full reachable
    //! state space of the propagation protocol, including the stale-array
    //! windows between a propagation DCAS and its `levels[l] ← ⊥` clear,
    //! and the *monotone read cuts* a real collector can observe (levels
    //! are read upward in time while propagations and clears land).

    use super::plan_reconstruction;
    use crate::config::MAX_LEVEL;
    use crate::tritmap::Tritmap;
    use proptest::prelude::*;

    const K: usize = 2;

    #[derive(Clone, Debug, PartialEq)]
    struct Model {
        /// Physical array length at each level (stale arrays included).
        sizes: [usize; MAX_LEVEL],
        /// Logical tritmap digits.
        trits: [u8; MAX_LEVEL],
        /// Level holds a stale array (trit already 0, clear pending).
        stale: [bool; MAX_LEVEL],
    }

    #[derive(Clone, Copy, Debug)]
    enum Step {
        /// Algorithm 3's DCAS (changes the stream size).
        Insert,
        /// Algorithm 4 into an empty level (atomic DCAS).
        PropagateEmpty(usize),
        /// Algorithm 4 into a full level (atomic DCAS).
        PropagateFull(usize),
        /// Algorithm 4's deferred `levels[l] ← ⊥`.
        Clear(usize),
    }

    impl Model {
        fn new() -> Self {
            Self { sizes: [0; MAX_LEVEL], trits: [0; MAX_LEVEL], stale: [false; MAX_LEVEL] }
        }

        fn n(&self) -> u64 {
            Tritmap::from_trits(&self.trits).stream_size(K)
        }

        fn legal_steps(&self) -> Vec<Step> {
            let mut steps = Vec::new();
            if self.trits[0] == 0 && self.sizes[0] == 0 {
                steps.push(Step::Insert);
            }
            for l in 0..MAX_LEVEL - 1 {
                if self.trits[l] == 2 {
                    match self.trits[l + 1] {
                        0 if self.sizes[l + 1] == 0 => steps.push(Step::PropagateEmpty(l)),
                        1 => steps.push(Step::PropagateFull(l)),
                        _ => {}
                    }
                }
            }
            for l in 0..MAX_LEVEL {
                if self.stale[l] {
                    steps.push(Step::Clear(l));
                }
            }
            steps
        }

        fn apply(&mut self, step: Step) {
            match step {
                Step::Insert => {
                    assert_eq!(self.trits[0], 0);
                    assert_eq!(self.sizes[0], 0);
                    self.sizes[0] = 2 * K;
                    self.trits[0] = 2;
                }
                Step::PropagateEmpty(l) => {
                    self.sizes[l + 1] = K;
                    self.trits[l + 1] = 1;
                    self.trits[l] = 0;
                    self.stale[l] = true;
                }
                Step::PropagateFull(l) => {
                    self.sizes[l + 1] = 2 * K;
                    self.trits[l + 1] = 2;
                    self.trits[l] = 0;
                    self.stale[l] = true;
                }
                Step::Clear(l) => {
                    self.sizes[l] = 0;
                    self.stale[l] = false;
                }
            }
        }
    }

    /// Drive the model with `choices`, returning every reached state.
    fn trajectory(choices: &[u8]) -> Vec<Model> {
        let mut state = Model::new();
        let mut states = vec![state.clone()];
        for &c in choices {
            let steps = state.legal_steps();
            if steps.is_empty() {
                break;
            }
            state.apply(steps[c as usize % steps.len()]);
            states.push(state.clone());
        }
        states
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Every reachable instantaneous state reconstructs its stream
        /// size exactly (Lemma 5 for point snapshots).
        #[test]
        fn every_reachable_state_reconstructs(choices in prop::collection::vec(any::<u8>(), 0..300)) {
            for state in trajectory(&choices) {
                let n = state.n();
                let plan = plan_reconstruction(n, &state.sizes, K);
                prop_assert!(plan.is_some(), "state {:?} (n={}) failed", state, n);
                let plan = plan.unwrap();
                let covered: u64 = (0..MAX_LEVEL)
                    .filter(|&i| plan.include[i])
                    .map(|i| state.sizes[i] as u64 * (1 << i))
                    .sum();
                prop_assert_eq!(covered, n);
                prop_assert_eq!(Tritmap::from_trits(&plan.trits).stream_size(K), n);
            }
        }

        /// Monotone read cuts: the collector reads level i before level
        /// i+1, while same-stream-size steps (propagations, clears) land
        /// in between. Any such cut must still reconstruct exactly —
        /// this is the heart of Lemmas 2–4.
        #[test]
        fn monotone_cuts_reconstruct(
            choices in prop::collection::vec(any::<u8>(), 1..300),
            cut_seed in any::<u64>(),
        ) {
            let states = trajectory(&choices);
            // Split into windows of equal stream size (no Insert inside).
            let mut windows: Vec<(u64, Vec<&Model>)> = Vec::new();
            for state in &states {
                match windows.last_mut() {
                    Some((n, group)) if *n == state.n() => group.push(state),
                    _ => windows.push((state.n(), vec![state])),
                }
            }
            let mut rng = qc_common::rng::Xoshiro256::seed_from_u64(cut_seed);
            for (n, group) in &windows {
                // A cut: non-decreasing observation indices per level.
                let mut observed = [0usize; MAX_LEVEL];
                let mut t = 0usize;
                for (i, slot) in observed.iter_mut().enumerate() {
                    t += rng.next_below((group.len() - t) as u64) as usize;
                    *slot = group[t].sizes[i];
                }
                let plan = plan_reconstruction(*n, &observed, K);
                prop_assert!(
                    plan.is_some(),
                    "cut over window n={} failed: observed {:?}",
                    n,
                    observed
                );
                let plan = plan.unwrap();
                let covered: u64 = (0..MAX_LEVEL)
                    .filter(|&i| plan.include[i])
                    .map(|i| observed[i] as u64 * (1 << i))
                    .sum();
                prop_assert_eq!(covered, *n);
            }
        }
    }

    /// The paper's §3.3 worked example: a query reads tm1 = 00202, then
    /// levels sized (bottom-up) 2k, k, 2k, then tm2 = 00210 — both
    /// tritmaps represent a 10k stream. Reconstruction takes level 2
    /// (4·2k = 8k) and level 1 (2·k = 2k), reaching exactly 10k, and must
    /// therefore *exclude* the 2k array still visible at level 0 (its
    /// elements are the ones already merged into level 1).
    #[test]
    fn paper_section_3_3_example() {
        let mut sizes = [0usize; MAX_LEVEL];
        sizes[0] = 2 * K;
        sizes[1] = K;
        sizes[2] = 2 * K;
        let n = 10 * K as u64;
        let plan = plan_reconstruction(n, &sizes, K).expect("paper example reconstructs");
        assert!(plan.include[2] && plan.include[1]);
        assert!(!plan.include[0], "level 0's batch is already represented by level 1");
        assert_eq!(plan.trits[..3], [0, 1, 2]);
        assert_eq!(Tritmap::from_trits(&plan.trits).stream_size(K), n);
    }

    /// A stale level-0 array left behind by a finished propagation must be
    /// excluded (its data lives on in level 1).
    #[test]
    fn stale_level_zero_is_excluded() {
        let mut sizes = [0usize; MAX_LEVEL];
        sizes[0] = 2 * K; // stale: trit 0 is 0
        sizes[1] = K; // the sample of it
        let n = 2 * K as u64; // tritmap counts only level 1 (k · 2¹)
        let plan = plan_reconstruction(n, &sizes, K).unwrap();
        assert!(!plan.include[0], "stale array must not be re-counted");
        assert!(plan.include[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quancurrent;

    /// Build hand-crafted level states through the real update path and
    /// check reconstruction invariants.
    #[test]
    fn snapshot_of_empty_sketch() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).seed(1).build();
        let handle = q.shared().domain.register();
        let snap = build_snapshot(q.shared(), &handle);
        assert_eq!(snap.n, 0);
        assert!(snap.parts.is_empty());
        assert_eq!(snap.my_tritmap, Tritmap::EMPTY);
    }

    #[test]
    fn snapshot_matches_tritmap_stream_size() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).seed(1).build();
        let mut u = q.updater();
        for x in 0..64u64 {
            u.update(x);
        }
        let handle = q.shared().domain.register();
        let snap = build_snapshot(q.shared(), &handle);
        assert_eq!(snap.n, q.stream_len());
        assert_eq!(snap.my_tritmap.stream_size(4), snap.n);
        let total: u64 = snap.parts.iter().map(|(v, w)| v.len() as u64 * w).sum();
        assert_eq!(total, snap.n, "every element accounted exactly once");
    }

    #[test]
    fn snapshot_parts_are_sorted_arrays() {
        let q = Quancurrent::<u64>::builder().k(8).b(4).seed(3).build();
        let mut u = q.updater();
        for x in (0..1000u64).rev() {
            u.update(x);
        }
        let handle = q.shared().domain.register();
        let snap = build_snapshot(q.shared(), &handle);
        for (arr, w) in &snap.parts {
            assert!(qc_common::merge::is_sorted(arr), "weight-{w} part unsorted");
        }
    }
}
