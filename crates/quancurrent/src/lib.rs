//! **Quancurrent** — a highly scalable concurrent Quantiles sketch.
//!
//! From-scratch Rust implementation of Elias-Zada, Rinberg & Keidar,
//! *Quancurrent: A Concurrent Quantiles Sketch* (SPAA 2023,
//! arXiv:2208.09265). The sketch estimates the quantile distribution of a
//! high-rate stream ingested by `N` concurrent update threads while an
//! unbounded number of query threads read it, with:
//!
//! * **three-level sorting** — a `b`-element thread-local buffer, a
//!   `2k`-element per-NUMA-node *Gather&Sort* buffer, and the shared
//!   multi-level sketch, so no single merge-sort serializes ingestion;
//! * **concurrent propagation** — levels are coordinated by a base-3
//!   [`Tritmap`] updated with double-compare-double-swap
//!   ([`qc_mwcas`]), so different batches climb different levels in
//!   parallel (paper Figure 5);
//! * **holes** — the Gather&Sort hand-off is deliberately unsynchronized;
//!   the expected number of duplicated/dropped samples per 2k batch is
//!   below 2.8 (§4.1) and is tracked live in [`SketchStats::holes`];
//! * **atomic snapshot queries** — a double-collect over the monotone
//!   tritmap (Algorithm 5) yields linearizable relaxed queries, cached per
//!   handle under the freshness bound ρ;
//! * **r-relaxation** — queries may miss at most r = 4kS + (N−S)·b recent
//!   updates ([`Quancurrent::relaxation_bound`]).
//!
//! # Quick start
//!
//! ```
//! use quancurrent::Quancurrent;
//! use std::sync::Barrier;
//!
//! let sketch = Quancurrent::<f64>::builder().k(256).b(8).build();
//! let barrier = Barrier::new(4);
//!
//! std::thread::scope(|s| {
//!     for t in 0..4 {
//!         let mut updater = sketch.updater();
//!         let barrier = &barrier;
//!         s.spawn(move || {
//!             barrier.wait();
//!             for i in 0..25_000 {
//!                 updater.update((t * 25_000 + i) as f64);
//!             }
//!         });
//!     }
//! });
//!
//! let mut queries = sketch.query_handle();
//! let median = queries.query(0.5).unwrap();
//! assert!((20_000.0..80_000.0).contains(&median));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backoff;
mod config;
mod gather_sort;
mod query;
mod sketch;
mod snapshot;
mod stats;
mod tritmap;
mod updater;

pub use config::{Builder, Config, MAX_LEVEL};
pub use query::QueryHandle;
pub use sketch::Quancurrent;
pub use stats::SketchStats;
pub use tritmap::Tritmap;
pub use updater::Updater;
