//! The tritmap: a base-3 integer describing the state of every level.
//!
//! Trit `i` (paper §3.1):
//!
//! * `0` — level `i` is empty (or holds ignored, already-propagated data);
//! * `1` — level `i` holds `k` elements;
//! * `2` — level `i` holds `2k` elements and is in propagation.
//!
//! Packed as Σ tritᵢ·3ⁱ into one integer, the tritmap has a crucial
//! property (paper Lemma 8): **every legal transition is an addition**, so
//! the value is monotonically increasing:
//!
//! * batch insert: trit 0 goes 0 → 2, i.e. `+2·3⁰`;
//! * propagation of level `l` into an empty level: `[2, 0] → [0, 1]` at
//!   trits `(l, l+1)`, i.e. `−2·3ˡ + 3ˡ⁺¹ = +3ˡ`;
//! * propagation of level `l` into a full level: `[2, 1] → [0, 2]`, i.e.
//!   `−2·3ˡ + 3ˡ⁺¹ = +3ˡ` as well.
//!
//! Monotonicity is what lets the query's double-collect (Algorithm 5)
//! conclude that two equal *stream sizes* imply the same stream (Lemma 1).

use crate::config::MAX_LEVEL;

/// 3⁰ … 3³¹, so transitions can be expressed as additions.
pub(crate) const POW3: [u64; MAX_LEVEL + 1] = {
    let mut t = [0u64; MAX_LEVEL + 1];
    let mut i = 0;
    let mut p = 1u64;
    while i <= MAX_LEVEL {
        t[i] = p;
        if i < MAX_LEVEL {
            p *= 3;
        }
        i += 1;
    }
    t
};

/// A decoded tritmap value.
///
/// Plain value semantics — copy it out of the shared `MwcasWord`, inspect,
/// and compute successor values for the DCAS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tritmap(pub u64);

impl Tritmap {
    /// The empty sketch.
    pub const EMPTY: Tritmap = Tritmap(0);

    /// Trit `i` (0, 1 or 2).
    #[inline]
    pub fn trit(self, i: usize) -> u8 {
        debug_assert!(i < MAX_LEVEL);
        ((self.0 / POW3[i]) % 3) as u8
    }

    /// The stream size this tritmap represents (Algorithm 6): trit 1
    /// contributes `k·2ⁱ`, trit 2 contributes `2k·2ⁱ`.
    pub fn stream_size(self, k: usize) -> u64 {
        let mut value = self.0;
        let mut size = 0u64;
        let mut i = 0usize;
        while value != 0 {
            let trit = value % 3;
            size += (trit * (k as u64)) << i;
            value /= 3;
            i += 1;
        }
        size
    }

    /// Successor after a batch insert (Algorithm 3): trit 0 must be 0, the
    /// new value sets it to 2.
    #[inline]
    pub fn after_batch_insert(self) -> Tritmap {
        debug_assert_eq!(self.trit(0), 0, "batch insert requires empty level 0");
        Tritmap(self.0 + 2)
    }

    /// Successor after propagating level `l` (both Algorithm 4 forms are
    /// `+3ˡ`): requires trit `l` = 2 and trit `l+1` ∈ {0, 1}.
    #[inline]
    pub fn after_propagate(self, l: usize) -> Tritmap {
        debug_assert_eq!(self.trit(l), 2, "propagation requires level {l} in state 2");
        debug_assert_ne!(self.trit(l + 1), 2, "propagation into a busy level");
        Tritmap(self.0 + POW3[l])
    }

    /// Build a tritmap from explicit trits (index = level). Test helper and
    /// snapshot reconstruction.
    pub fn from_trits(trits: &[u8]) -> Tritmap {
        assert!(trits.len() <= MAX_LEVEL);
        let mut v = 0u64;
        for (i, &t) in trits.iter().enumerate() {
            assert!(t <= 2, "trit out of range");
            v += t as u64 * POW3[i];
        }
        Tritmap(v)
    }

    /// All trits up to `len` (diagnostics).
    pub fn trits(self, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.trit(i)).collect()
    }

    /// Highest level with a nonzero trit, plus one (0 for the empty map).
    pub fn occupied_levels(self) -> usize {
        let mut v = self.0;
        let mut n = 0;
        while v != 0 {
            v /= 3;
            n += 1;
        }
        n
    }
}

impl std::fmt::Debug for Tritmap {
    /// Prints like the paper's figures: most-significant trit first, e.g.
    /// `00210` for trits \[0,1,2,0,0\].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.occupied_levels().max(1);
        let s: String = (0..n).rev().map(|i| char::from(b'0' + self.trit(i))).collect();
        write!(f, "Tritmap({s})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow3_table() {
        assert_eq!(POW3[0], 1);
        assert_eq!(POW3[1], 3);
        assert_eq!(POW3[5], 243);
        assert_eq!(POW3[MAX_LEVEL], 3u64.pow(MAX_LEVEL as u32));
        // Must fit the 62-bit logical word domain.
        assert!(3 * POW3[MAX_LEVEL] - 1 <= qc_mwcas::MAX_LOGICAL);
    }

    #[test]
    fn empty_map() {
        let t = Tritmap::EMPTY;
        assert_eq!(t.stream_size(1024), 0);
        assert_eq!(t.occupied_levels(), 0);
        for i in 0..MAX_LEVEL {
            assert_eq!(t.trit(i), 0);
        }
    }

    #[test]
    fn from_trits_roundtrip() {
        let t = Tritmap::from_trits(&[2, 1, 0, 2]);
        assert_eq!(t.trit(0), 2);
        assert_eq!(t.trit(1), 1);
        assert_eq!(t.trit(2), 0);
        assert_eq!(t.trit(3), 2);
        assert_eq!(t.trits(5), vec![2, 1, 0, 2, 0]);
    }

    /// The paper's own example (§3.3): tritmap 00202 (trits [2,0,2,0,0])
    /// and 00210 (trits [0,1,2,0,0]) both represent a 10k stream.
    #[test]
    fn paper_example_stream_sizes_match() {
        let k = 1024;
        let tm1 = Tritmap::from_trits(&[2, 0, 2]); // displayed 00202
        let tm2 = Tritmap::from_trits(&[0, 1, 2]); // displayed 00210
        assert_eq!(tm1.stream_size(k), 10 * k as u64);
        assert_eq!(tm2.stream_size(k), 10 * k as u64);
        assert_eq!(format!("{tm1:?}"), "Tritmap(202)");
        assert_eq!(format!("{tm2:?}"), "Tritmap(210)");
    }

    #[test]
    fn stream_size_weights_levels() {
        let k = 16;
        // trit 1 at level 3: k·2³ = 128. trit 2 at level 0: 2k = 32.
        let t = Tritmap::from_trits(&[2, 0, 0, 1]);
        assert_eq!(t.stream_size(k), 32 + 128);
    }

    #[test]
    fn batch_insert_adds_two() {
        let t = Tritmap::from_trits(&[0, 1, 1]);
        let after = t.after_batch_insert();
        assert_eq!(after.trit(0), 2);
        assert_eq!(after.trit(1), 1);
        assert_eq!(after.0, t.0 + 2);
    }

    #[test]
    fn propagate_into_empty_is_plus_pow3() {
        // [2,0] at levels (1,2) → [0,1]: trits [x,2,0] → [x,0,1].
        let t = Tritmap::from_trits(&[1, 2, 0]);
        let after = t.after_propagate(1);
        assert_eq!(after.trit(1), 0);
        assert_eq!(after.trit(2), 1);
        assert_eq!(after.0, t.0 + POW3[1]);
    }

    #[test]
    fn propagate_into_full_is_also_plus_pow3() {
        // [2,1] at levels (0,1) → [0,2].
        let t = Tritmap::from_trits(&[2, 1]);
        let after = t.after_propagate(0);
        assert_eq!(after.trit(0), 0);
        assert_eq!(after.trit(1), 2);
        assert_eq!(after.0, t.0 + 1);
    }

    /// Both propagation forms preserve the represented stream size; a batch
    /// insert adds exactly 2k.
    #[test]
    fn transitions_preserve_or_grow_stream_size() {
        let k = 8;
        let t = Tritmap::from_trits(&[0, 1, 1]);
        assert_eq!(t.after_batch_insert().stream_size(k), t.stream_size(k) + 2 * k as u64);

        let p = Tritmap::from_trits(&[2, 1]);
        assert_eq!(p.after_propagate(0).stream_size(k), p.stream_size(k));
        let q = Tritmap::from_trits(&[2, 0]);
        assert_eq!(q.after_propagate(0).stream_size(k), q.stream_size(k));
    }

    /// Monotonicity (Lemma 8): any sequence of legal transitions only
    /// increases the packed value.
    #[test]
    fn transitions_are_monotone() {
        let k = 4;
        let mut t = Tritmap::EMPTY;
        let mut prev = t.0;
        // Simulate: insert, propagate 0 (empty), insert, propagate 0 (full),
        // propagate 1 (empty).
        t = t.after_batch_insert();
        assert!(t.0 > prev);
        prev = t.0;
        t = t.after_propagate(0);
        assert!(t.0 > prev);
        prev = t.0;
        t = t.after_batch_insert();
        assert!(t.0 > prev);
        prev = t.0;
        t = t.after_propagate(0);
        assert!(t.0 > prev);
        prev = t.0;
        t = t.after_propagate(1);
        assert!(t.0 > prev);
        assert_eq!(t.stream_size(k), 4 * k as u64);
        assert_eq!(t.trits(3), vec![0, 0, 1]);
    }

    /// Walk the paper's Figure 5 sequence and check every intermediate
    /// tritmap (displayed most-significant-first in the figure).
    #[test]
    fn figure_5_walkthrough() {
        // (a) owner(i) inserts batch i onto [0,1,1,0,0] → 00112.
        let t = Tritmap::from_trits(&[0, 1, 1]).after_batch_insert();
        assert_eq!(format!("{t:?}"), "Tritmap(112)");
        // (b) merge level 0 with full level 1 → 00120.
        let t = t.after_propagate(0);
        assert_eq!(format!("{t:?}"), "Tritmap(120)");
        // (d) owner(i+1) inserts its batch → 00122.
        let t = t.after_batch_insert();
        assert_eq!(format!("{t:?}"), "Tritmap(122)");
        // (e) owner(i) merges level 1 with full level 2 → 00202.
        let t = t.after_propagate(1);
        assert_eq!(format!("{t:?}"), "Tritmap(202)");
        // (g) owner(i+1) merges level 0 into now-empty level 1 → 00210.
        let t = t.after_propagate(0);
        assert_eq!(format!("{t:?}"), "Tritmap(210)");
    }

    #[test]
    fn occupied_levels_counts_significant_trits() {
        assert_eq!(Tritmap::from_trits(&[2]).occupied_levels(), 1);
        assert_eq!(Tritmap::from_trits(&[0, 0, 1]).occupied_levels(), 3);
        assert_eq!(Tritmap::from_trits(&[1, 0, 0]).occupied_levels(), 1);
    }
}
