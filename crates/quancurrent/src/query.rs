//! Query handles: cached atomic snapshots with freshness bound ρ
//! (Algorithm 5, lines 48–51).

use std::sync::Arc;

use qc_common::bits::OrderedBits;
use qc_common::summary::{Summary, WeightedSummary};
use qc_reclaim::LocalHandle;

use crate::sketch::SketchShared;
use crate::snapshot::build_snapshot;
use crate::stats::Counters;
use crate::tritmap::Tritmap;

/// A query thread's handle (one per thread; `Send`, not `Sync`).
///
/// Caches the last snapshot (`snapshot` / `myTrit` of Algorithm 1) and
/// answers from it while the stream has not grown beyond the freshness
/// bound: `n_now / n_cached ≤ ρ`. With ρ = 0 every query rebuilds; with
/// ρ = 1 + ε′ the extra rank error is at most ε′ (§4.2).
pub struct QueryHandle<T: OrderedBits> {
    shared: Arc<SketchShared>,
    reclaim: LocalHandle,
    cached: Option<Cached>,
    hits: u64,
    misses: u64,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

struct Cached {
    n: u64,
    my_tritmap: Tritmap,
    summary: WeightedSummary,
}

impl<T: OrderedBits> QueryHandle<T> {
    pub(crate) fn new(shared: Arc<SketchShared>) -> Self {
        let reclaim = shared.domain.register();
        Self {
            reclaim,
            shared,
            cached: None,
            hits: 0,
            misses: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Estimate the φ-quantile (paper `query(φ)`). `None` iff the sketch's
    /// levels represent an empty stream.
    pub fn query(&mut self, phi: f64) -> Option<T> {
        self.fresh_summary().quantile_bits(phi).map(T::from_ordered_bits)
    }

    /// Estimate the rank of `x` in the snapshot's stream.
    pub fn rank(&mut self, x: T) -> u64 {
        self.fresh_summary().rank_bits(x.to_ordered_bits())
    }

    /// Estimated CDF at the given split points.
    pub fn cdf(&mut self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.fresh_summary().cdf_bits(&bits)
    }

    /// Batch quantile queries against one consistent snapshot.
    pub fn quantiles(&mut self, phis: &[f64]) -> Vec<Option<T>> {
        let summary = self.fresh_summary();
        phis.iter().map(|&phi| summary.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    /// Estimated histogram over ascending `splits`: element counts per
    /// bucket `[splits[i], splits[i+1])` including under/overflow buckets
    /// (`splits.len() + 1` counts).
    pub fn histogram(&mut self, splits: &[T]) -> Vec<u64> {
        let bits: Vec<u64> = splits.iter().map(|x| x.to_ordered_bits()).collect();
        self.fresh_summary().histogram_bits(&bits)
    }

    /// Force-rebuild the cached snapshot regardless of ρ.
    pub fn refresh(&mut self) {
        self.rebuild();
    }

    /// Stream size of the cached snapshot (0 before the first query).
    pub fn cached_stream_len(&self) -> u64 {
        self.cached.as_ref().map_or(0, |c| c.n)
    }

    /// The cached snapshot's `myTrit` (diagnostics; Algorithm 1, line 14).
    pub fn cached_tritmap(&self) -> Tritmap {
        self.cached.as_ref().map_or(Tritmap::EMPTY, |c| c.my_tritmap)
    }

    /// `(cache hits, cache misses)` of this handle. The miss rate is the
    /// fraction of queries that rebuilt the snapshot (Figure 7c).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lines 49–51: return the cached summary if fresh enough, else
    /// rebuild.
    fn fresh_summary(&mut self) -> &WeightedSummary {
        let rho = self.shared.cfg.rho;
        let fresh = match (&self.cached, rho) {
            (None, _) => false,
            // ρ = 0: caching disabled, always rebuild.
            (Some(_), 0.0) => false,
            (Some(c), rho) => {
                let n_now = self.shared.tritmap_now().stream_size(self.shared.cfg.k);
                if c.n == 0 {
                    n_now == 0
                } else {
                    (n_now as f64) / (c.n as f64) <= rho
                }
            }
        };
        if fresh {
            self.hits += 1;
            Counters::bump(&self.shared.counters.cache_hits);
        } else {
            self.rebuild();
        }
        &self.cached.as_ref().expect("rebuilt above").summary
    }

    fn rebuild(&mut self) {
        let snap = build_snapshot(&self.shared, &self.reclaim);
        self.misses += 1;
        Counters::bump(&self.shared.counters.cache_misses);
        self.cached =
            Some(Cached { n: snap.n, my_tritmap: snap.my_tritmap, summary: snap.into_summary() });
    }
}

impl<T: OrderedBits> std::fmt::Debug for QueryHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("cached_n", &self.cached_stream_len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Quancurrent;

    fn filled(k: usize, n: u64, rho: f64) -> Quancurrent<u64> {
        let q = Quancurrent::<u64>::builder().k(k).b(4).rho(rho).seed(5).build();
        let mut u = q.updater();
        for x in 0..n {
            u.update(x);
        }
        q
    }

    #[test]
    fn empty_sketch_queries_none() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).build();
        let mut h = q.query_handle();
        assert_eq!(h.query(0.5), None);
        assert_eq!(h.rank(42), 0);
    }

    #[test]
    fn median_of_uniform_range() {
        let q = filled(64, 100_000, 1.0);
        let mut h = q.query_handle();
        let m = h.query(0.5).unwrap();
        assert!((30_000..70_000).contains(&m), "median {m}");
        assert_eq!(h.query(0.0), Some(h.query(0.0).unwrap()));
    }

    #[test]
    fn cache_hits_while_stream_is_static() {
        let q = filled(16, 10_000, 1.0);
        let mut h = q.query_handle();
        let _ = h.query(0.5); // miss (first)
        let _ = h.query(0.9); // hit (nothing changed)
        let _ = h.query(0.1); // hit
        assert_eq!(h.cache_stats(), (2, 1));
    }

    #[test]
    fn rho_zero_disables_caching() {
        let q = filled(16, 10_000, 0.0);
        let mut h = q.query_handle();
        let _ = h.query(0.5);
        let _ = h.query(0.5);
        let _ = h.query(0.5);
        assert_eq!(h.cache_stats(), (0, 3));
    }

    #[test]
    fn growing_stream_invalidates_under_strict_rho() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).rho(1.0).seed(1).build();
        let mut u = q.updater();
        for x in 0..16u64 {
            u.update(x);
        }
        let mut h = q.query_handle();
        let _ = h.query(0.5); // miss
        for x in 16..32u64 {
            u.update(x); // grows the stream
        }
        let _ = h.query(0.5); // must rebuild (ratio 2 > 1)
        assert_eq!(h.cache_stats(), (0, 2));
    }

    #[test]
    fn generous_rho_tolerates_growth() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).rho(4.0).seed(1).build();
        let mut u = q.updater();
        for x in 0..16u64 {
            u.update(x);
        }
        let mut h = q.query_handle();
        let _ = h.query(0.5); // miss, caches n = 16
        for x in 16..48u64 {
            u.update(x); // n grows to 48: ratio 3 ≤ 4
        }
        let _ = h.query(0.5); // hit despite growth
        assert_eq!(h.cache_stats(), (1, 1));
        assert_eq!(h.cached_stream_len(), 16);
        h.refresh();
        assert_eq!(h.cached_stream_len(), 48);
    }

    #[test]
    fn batch_quantiles_are_monotone() {
        let q = filled(32, 50_000, 1.0);
        let mut h = q.query_handle();
        let qs = h.quantiles(&[0.1, 0.3, 0.5, 0.7, 0.9]);
        let vals: Vec<u64> = qs.into_iter().map(Option::unwrap).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
    }

    #[test]
    fn histogram_covers_the_stream() {
        let q = filled(32, 60_000, 1.0);
        let mut h = q.query_handle();
        let counts = h.histogram(&[15_000, 30_000, 45_000]);
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), q.stream_len());
        // Uniform data: each quarter holds ~25% (within sketch error).
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / q.stream_len() as f64;
            assert!((frac - 0.25).abs() < 0.1, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn cached_tritmap_matches_stream() {
        let q = filled(4, 64, 1.0);
        let mut h = q.query_handle();
        let _ = h.query(0.5);
        assert_eq!(h.cached_tritmap().stream_size(4), h.cached_stream_len());
    }
}
