//! Stage 1: the per-node Gather&Sort unit (paper §3.1–3.2, Algorithm 2).
//!
//! Each unit owns two shared buffers of `2k` slots and two fetch-and-add
//! fill indices. A thread with a full, sorted local buffer reserves `b`
//! slots with F&A and copies its elements in **without further
//! synchronization** — the copy races with the batch owner's read of the
//! whole buffer by design. The thread whose reservation fills the last `b`
//! slots is the *owner* of the batch: it snapshots the 2k slots (sorted)
//! and carries them into the sketch's levels.
//!
//! ## Holes (§4.1)
//!
//! Because slot writes are unsynchronized, the owner may read a slot whose
//! writer has not finished (an old value from a previous window gets
//! *duplicated*, the new value is *dropped*). The paper bounds the expected
//! number of such holes per batch by 2.8. To validate that empirically, every
//! slot carries a *round stamp*: writers stamp the round they reserved in,
//! and the owner counts slots whose stamp is not the current round. The
//! stamp write is one extra `Relaxed` store per element; misattribution is
//! possible only in the instant a buffer is recycled, and errs toward
//! over-counting (conservative for checking an upper bound).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Outcome of placing a local buffer into a Gather&Sort buffer.
pub(crate) enum Placement {
    /// Elements copied; someone else will own the batch.
    Placed,
    /// This thread's copy filled the buffer: it owns the batch and must
    /// run stages 2–3 with the sorted copy, then [`GatherSort::reset`].
    Owner {
        /// Sorted snapshot of all `2k` slots.
        batch: Vec<u64>,
        /// Stale slots observed while copying (holes).
        holes: u64,
    },
    /// The buffer is full (its owner has not reset it yet) — try the
    /// other buffer.
    Full,
}

struct Buffer {
    slots: Box<[AtomicU64]>,
    stamps: Box<[AtomicU64]>,
    /// Next free slot ×1 (bumped by `b` per reservation). May transiently
    /// exceed `2k` when threads overshoot a full buffer.
    index: AtomicU64,
    /// Recycling round, bumped on reset. Stamps from other rounds mark
    /// holes.
    round: AtomicU64,
    /// Set by the batch owner just before it starts installing the 2k
    /// snapshot into the levels (the level-0 DCAS), cleared by `reset`
    /// **after** the fill index is zeroed. While set, quiescent accounting
    /// ([`GatherSort::pending`]/[`GatherSort::pending_len`]) skips this
    /// buffer: its elements are about to be (or already are) counted by
    /// the tritmap, and a reader racing the install→reset window would
    /// otherwise count the batch twice. Skipping makes the race a bounded
    /// transient *miss* instead — the direction the relaxation model
    /// already allows.
    installing: AtomicBool,
}

impl Buffer {
    fn new(two_k: usize) -> Self {
        Self {
            slots: (0..two_k).map(|_| AtomicU64::new(0)).collect(),
            // u64::MAX never equals a round, so never-written slots count
            // as holes in round 0 too.
            stamps: (0..two_k).map(|_| AtomicU64::new(u64::MAX)).collect(),
            index: AtomicU64::new(0),
            round: AtomicU64::new(0),
            installing: AtomicBool::new(false),
        }
    }
}

/// One NUMA node's Gather&Sort unit: two `2k` buffers plus fill indices
/// (paper Figure 4a).
pub(crate) struct GatherSort {
    two_k: usize,
    b: usize,
    buffers: [Buffer; 2],
    /// Holes observed per region j ∈ [0, 2k/b) — the empirical H_j of
    /// §4.1's analysis (region j = slots [j·b, (j+1)·b), written by the
    /// thread whose F&A landed there).
    region_holes: Box<[AtomicU64]>,
}

impl GatherSort {
    pub(crate) fn new(k: usize, b: usize) -> Self {
        let two_k = 2 * k;
        assert!(two_k.is_multiple_of(b), "b must divide 2k");
        Self {
            two_k,
            b,
            buffers: [Buffer::new(two_k), Buffer::new(two_k)],
            region_holes: (0..two_k / b).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Algorithm 2, lines 21–28, for one buffer: reserve `b` slots, copy
    /// the local buffer in, detect ownership.
    ///
    /// `local` must contain exactly `b` elements (sorted by the caller —
    /// the unit itself is insensitive to order, but stage 2 expects the
    /// invariant documented in the paper).
    pub(crate) fn try_place(&self, which: usize, local: &[u64]) -> Placement {
        debug_assert_eq!(local.len(), self.b);
        let buf = &self.buffers[which];
        // Stamp with the round observed *before* reserving: if the buffer
        // recycles mid-flight we mis-stamp toward "stale", over-counting
        // holes (see module docs).
        let round = buf.round.load(Ordering::Acquire);
        let idx = buf.index.fetch_add(self.b as u64, Ordering::SeqCst) as usize;
        if idx >= self.two_k {
            return Placement::Full;
        }
        // b | 2k, so a successful reservation never straddles the end.
        debug_assert!(idx + self.b <= self.two_k);
        for (j, &v) in local.iter().enumerate() {
            buf.slots[idx + j].store(v, Ordering::Relaxed);
            buf.stamps[idx + j].store(round, Ordering::Relaxed);
        }
        if idx + self.b == self.two_k {
            // Owner: snapshot all slots (racing with laggard writers — the
            // benign races that produce holes).
            let mut batch = Vec::with_capacity(self.two_k);
            let mut holes = 0u64;
            for j in 0..self.two_k {
                batch.push(buf.slots[j].load(Ordering::Relaxed));
                if buf.stamps[j].load(Ordering::Relaxed) != round {
                    holes += 1;
                    self.region_holes[j / self.b].fetch_add(1, Ordering::Relaxed);
                }
            }
            batch.sort_unstable();
            Placement::Owner { batch, holes }
        } else {
            Placement::Placed
        }
    }

    /// Mark `which` as being installed into the levels: called by the
    /// batch owner before its first level-0 DCAS attempt, so accounting
    /// readers stop counting the buffer's elements before the tritmap
    /// starts counting them. Cleared by [`GatherSort::reset`].
    pub(crate) fn begin_install(&self, which: usize) {
        self.buffers[which].installing.store(true, Ordering::SeqCst);
    }

    /// Algorithm 3, line 34: after the owner's batch lands in level 0,
    /// reopen the buffer for new reservations.
    ///
    /// The install flag is cleared **after** the index is zeroed: a
    /// reader seeing `installing == false` therefore sees either the
    /// pre-install fill (batch not yet in the levels) or the reset state
    /// (index 0) — never the full index alongside the installed batch.
    pub(crate) fn reset(&self, which: usize) {
        let buf = &self.buffers[which];
        buf.round.fetch_add(1, Ordering::SeqCst);
        buf.index.store(0, Ordering::SeqCst);
        buf.installing.store(false, Ordering::SeqCst);
    }

    /// Elements currently buffered (for quiescent accounting): with no
    /// in-flight updates, each buffer holds exactly `min(index, 2k)`
    /// valid elements. A buffer whose batch is mid-install is skipped
    /// (see [`GatherSort::begin_install`]); callers reading the levels
    /// **before** calling this can transiently miss that batch, never
    /// count it twice.
    pub(crate) fn pending(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for buf in &self.buffers {
            if buf.installing.load(Ordering::SeqCst) {
                continue;
            }
            let idx = (buf.index.load(Ordering::SeqCst) as usize).min(self.two_k);
            for j in 0..idx {
                out.push(buf.slots[j].load(Ordering::SeqCst));
            }
        }
        out
    }

    /// Number of buffered elements (cheap form of [`GatherSort::pending`]).
    pub(crate) fn pending_len(&self) -> usize {
        self.buffers
            .iter()
            .map(|b| {
                if b.installing.load(Ordering::SeqCst) {
                    0
                } else {
                    (b.index.load(Ordering::SeqCst) as usize).min(self.two_k)
                }
            })
            .sum()
    }

    /// Cumulative holes per region (length `2k/b`) — §4.1's H_j measured.
    pub(crate) fn region_holes(&self) -> Vec<u64> {
        self.region_holes.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filling_one_buffer_yields_one_owner() {
        let gs = GatherSort::new(8, 4); // 2k = 16, 4 regions of 4
        let mut owners = 0;
        for r in 0..4u64 {
            let local: Vec<u64> = (0..4).map(|j| r * 10 + j).collect();
            match gs.try_place(0, &local) {
                Placement::Owner { batch, holes } => {
                    owners += 1;
                    assert_eq!(batch.len(), 16);
                    assert_eq!(holes, 0, "single-threaded fill has no holes");
                    assert!(qc_common::merge::is_sorted(&batch));
                }
                Placement::Placed => {}
                Placement::Full => panic!("buffer can hold 4 regions"),
            }
        }
        assert_eq!(owners, 1, "exactly the last placer owns");
    }

    #[test]
    fn overshoot_reports_full_until_reset() {
        let gs = GatherSort::new(2, 2); // 2k = 4, 2 regions
        let local = [1u64, 2];
        assert!(matches!(gs.try_place(0, &local), Placement::Placed));
        assert!(matches!(gs.try_place(0, &local), Placement::Owner { .. }));
        assert!(matches!(gs.try_place(0, &local), Placement::Full));
        assert!(matches!(gs.try_place(0, &local), Placement::Full));
        gs.reset(0);
        assert!(matches!(gs.try_place(0, &local), Placement::Placed));
    }

    #[test]
    fn owner_batch_contains_all_placed_values() {
        let gs = GatherSort::new(4, 2); // 2k = 8
        let mut expect = Vec::new();
        let mut batch_opt = None;
        for r in 0..4u64 {
            let local = [r * 2, r * 2 + 1];
            expect.extend_from_slice(&local);
            if let Placement::Owner { batch, .. } = gs.try_place(0, &local) {
                batch_opt = Some(batch);
            }
        }
        let mut batch = batch_opt.expect("owner must emerge");
        expect.sort_unstable();
        batch.sort_unstable();
        assert_eq!(batch, expect);
    }

    #[test]
    fn second_buffer_is_independent() {
        let gs = GatherSort::new(2, 2);
        let local = [7u64, 8];
        assert!(matches!(gs.try_place(0, &local), Placement::Placed));
        assert!(matches!(gs.try_place(1, &local), Placement::Placed));
        assert!(matches!(gs.try_place(1, &local), Placement::Owner { .. }));
        assert!(matches!(gs.try_place(0, &local), Placement::Owner { .. }));
    }

    #[test]
    fn pending_reflects_partial_fill() {
        let gs = GatherSort::new(4, 2);
        assert_eq!(gs.pending_len(), 0);
        gs.try_place(0, &[5, 6]);
        gs.try_place(1, &[7, 8]);
        assert_eq!(gs.pending_len(), 4);
        let mut p = gs.pending();
        p.sort_unstable();
        assert_eq!(p, vec![5, 6, 7, 8]);
    }

    #[test]
    fn installing_buffer_is_skipped_by_pending_until_reset() {
        let gs = GatherSort::new(2, 2); // 2k = 4
        gs.try_place(0, &[1, 2]);
        let Placement::Owner { .. } = gs.try_place(0, &[3, 4]) else {
            panic!("second region fills the buffer")
        };
        assert_eq!(gs.pending_len(), 4, "pre-install: the fill is buffered weight");
        // The owner flags the buffer before its level-0 DCAS: from that
        // point the elements are the levels' to count.
        gs.begin_install(0);
        assert_eq!(gs.pending_len(), 0, "mid-install: never count the batch alongside levels");
        assert!(gs.pending().is_empty());
        gs.reset(0);
        assert_eq!(gs.pending_len(), 0);
        // The buffer is reopened and counts again.
        gs.try_place(0, &[5, 6]);
        assert_eq!(gs.pending_len(), 2);
    }

    #[test]
    fn reset_clears_pending_count() {
        let gs = GatherSort::new(2, 2);
        gs.try_place(0, &[1, 2]);
        let Placement::Owner { .. } = gs.try_place(0, &[3, 4]) else {
            panic!("second region fills the buffer")
        };
        gs.reset(0);
        assert_eq!(gs.pending_len(), 0);
    }

    /// Multi-threaded conservation: every round produces exactly one owner
    /// with exactly 2k elements; counts never tear even under contention.
    #[test]
    fn concurrent_placement_conserves_counts() {
        use std::sync::atomic::AtomicU64 as A;
        const THREADS: usize = 8;
        const FLUSHES_PER_THREAD: usize = 300;

        let gs = GatherSort::new(8, 4); // 2k = 16
        let owners = A::new(0);
        let placed = A::new(0);

        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let gs = &gs;
                let owners = &owners;
                let placed = &placed;
                s.spawn(move || {
                    for f in 0..FLUSHES_PER_THREAD as u64 {
                        let local: Vec<u64> = (0..4).map(|j| t << 32 | f << 8 | j).collect();
                        let mut which = 0;
                        loop {
                            match gs.try_place(which, &local) {
                                Placement::Placed => break,
                                Placement::Owner { batch, .. } => {
                                    assert_eq!(batch.len(), 16);
                                    owners.fetch_add(1, Ordering::SeqCst);
                                    gs.reset(which);
                                    break;
                                }
                                Placement::Full => which ^= 1,
                            }
                        }
                        placed.fetch_add(4, Ordering::SeqCst);
                    }
                });
            }
        });

        let total = (THREADS * FLUSHES_PER_THREAD * 4) as u64;
        assert_eq!(placed.load(Ordering::SeqCst), total);
        let owned = owners.load(Ordering::SeqCst) * 16;
        let pending = gs.pending_len() as u64;
        assert_eq!(
            owned + pending,
            total,
            "batched + buffered must equal placed (count conservation despite holes)"
        );
    }
}
