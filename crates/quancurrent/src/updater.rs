//! Stages 1–3 of ingestion: local buffering, batch update, propagation
//! (paper Algorithms 2–4).

use std::sync::Arc;

use qc_common::bits::OrderedBits;
use qc_common::merge::merge_sorted;
use qc_common::rng::Xoshiro256;
use qc_common::sample::sample_odd_or_even;
use qc_mwcas::CasPair;
use qc_reclaim::{LocalHandle, Shared};

use crate::backoff::Backoff;
use crate::config::MAX_LEVEL;
use crate::gather_sort::Placement;
use crate::sketch::SketchShared;
use crate::stats::Counters;

/// An update thread's handle (one per thread; `Send`, not `Sync`).
///
/// Owns the thread-local buffer of `b` elements (Algorithm 1, line 13) and
/// executes all three ingestion stages when it becomes a batch owner.
pub struct Updater<T: OrderedBits> {
    shared: Arc<SketchShared>,
    node: usize,
    local: Vec<u64>,
    rng: Xoshiro256,
    reclaim: LocalHandle,
    pushed: u64,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T: OrderedBits> Updater<T> {
    pub(crate) fn new(shared: Arc<SketchShared>, node: usize) -> Self {
        let seed = shared.seed_ctr.fetch_add(0x9E37_79B9, std::sync::atomic::Ordering::SeqCst);
        let reclaim = shared.domain.register();
        Self {
            node,
            local: Vec::with_capacity(shared.cfg.b),
            rng: Xoshiro256::seed_from_u64(seed),
            reclaim,
            pushed: 0,
            shared,
            _marker: std::marker::PhantomData,
        }
    }

    /// The Gather&Sort unit (NUMA node) this updater feeds.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Total elements pushed through this handle.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Elements still in the thread-local buffer (at most `b − 1` after any
    /// `update` returns).
    pub fn pending(&self) -> Vec<T> {
        self.local.iter().map(|&bits| T::from_ordered_bits(bits)).collect()
    }

    /// Number of elements in the thread-local buffer (the allocation-free
    /// form of `pending().len()`, for accounting hot paths).
    pub fn pending_len(&self) -> usize {
        self.local.len()
    }

    /// Move the thread-local tail out of the handle, leaving it empty
    /// (capacity retained). [`Updater::pushed`] still counts the taken
    /// elements — the caller assumes responsibility for re-homing them.
    ///
    /// This is how shared-ingest leases achieve exact accounting: a
    /// sub-`b` tail cannot be placed into Gather&Sort (placement is
    /// exactly `b` slots), so an engine-level flush takes it and parks it
    /// in engine-visible storage instead.
    pub fn take_pending(&mut self) -> Vec<T> {
        let out = self.pending();
        self.local.clear();
        out
    }

    /// Process one stream element (paper `update(x)`, Algorithm 2).
    #[inline]
    pub fn update(&mut self, x: T) {
        self.local.push(x.to_ordered_bits());
        self.pushed += 1;
        if self.local.len() == self.shared.cfg.b {
            self.flush_local();
        }
    }

    /// Stage 1 (Algorithm 2, lines 19–30): sort the local buffer and move
    /// it into one of the node's Gather&Sort buffers; run stages 2–3 if
    /// this thread became the batch owner.
    fn flush_local(&mut self) {
        self.local.sort_unstable();
        let gs = &self.shared.gs[self.node];
        let mut which = 0usize;
        let mut backoff = Backoff::new();
        loop {
            match gs.try_place(which, &self.local) {
                Placement::Placed => break,
                Placement::Owner { batch, holes } => {
                    Counters::add(&self.shared.counters.holes, holes);
                    self.batch_update(which, batch);
                    break;
                }
                Placement::Full => {
                    // Line 29: i ← ¬i. Both buffers full means two owners
                    // are mid-batch-update; keep alternating.
                    Counters::bump(&self.shared.counters.gs_full_spins);
                    which ^= 1;
                    backoff.snooze();
                }
            }
        }
        self.local.clear();
    }

    /// Stage 2 (Algorithm 3): install the sorted 2k batch into level 0
    /// with DCAS(levels[0]: ⊥ → batch, tritmap[0]: 0 → 2), then reopen the
    /// Gather&Sort buffer and propagate.
    fn batch_update(&mut self, which_buffer: usize, batch: Vec<u64>) {
        debug_assert_eq!(batch.len(), 2 * self.shared.cfg.k);
        debug_assert!(qc_common::merge::is_sorted(&batch));
        let shared = Arc::clone(&self.shared);
        // From here to the post-install reset, the batch would be counted
        // both by the buffer's fill index and (once the DCAS lands) by
        // the tritmap. Flag the buffer so concurrent accounting readers
        // skip it — they may transiently miss the batch, never see it
        // twice.
        shared.gs[self.node].begin_install(which_buffer);
        let block = self.reclaim.alloc(batch);
        let raw = block.into_raw();

        // Line 33: spin until the DCAS succeeds.
        let mut backoff = Backoff::new();
        loop {
            let tm = shared.tritmap_now();
            if tm.trit(0) != 0 {
                // Another batch occupies level 0; wait for its propagation
                // to move it up.
                backoff.snooze();
                continue;
            }
            let ok = qc_mwcas::mwcas(
                &shared.arena,
                &[
                    CasPair { word: &shared.levels[0], old: 0, new: raw },
                    CasPair { word: &shared.tritmap, old: tm.0, new: tm.after_batch_insert().0 },
                ],
            );
            if ok {
                break;
            }
            Counters::bump(&shared.counters.dcas_retries);
        }

        // Line 34: reopen the buffer for new reservations.
        shared.gs[self.node].reset(which_buffer);
        Counters::bump(&shared.counters.batches);

        // Line 35 / stage 3.
        self.propagate(0, block);
    }

    /// Stage 3 (Algorithm 4): propagate level `l` upward until an empty
    /// level absorbs the carry.
    ///
    /// `cur` is the 2k block this owner just installed at level `l` — the
    /// owner carries the pointer, so it never re-reads a level it owns
    /// (tritmap trit `l` = 2 is the exclusive ownership token).
    fn propagate(&mut self, mut l: usize, mut cur: Shared<Vec<u64>>) {
        let shared = Arc::clone(&self.shared);
        loop {
            assert!(
                l + 1 < MAX_LEVEL,
                "propagation reached MAX_LEVEL ({MAX_LEVEL}); stream too large for tritmap"
            );
            // Line 39: sample odd or even indices with a fair coin.
            // SAFETY: `cur` is owned by this propagation (trit l = 2);
            // blocks are immutable once published.
            let sampled = sample_odd_or_even(unsafe { cur.deref() }, &mut self.rng);

            // Decide by the next level's state; trit l+1 can only be
            // changed to/from 2 by this owner or by the propagation it
            // waits for, so the case is stable once ∈ {0, 1}.
            let mut backoff = Backoff::new();
            let next_trit = loop {
                let tm = shared.tritmap_now();
                debug_assert_eq!(tm.trit(l), 2, "lost ownership of level {l}");
                match tm.trit(l + 1) {
                    2 => {
                        // Blocked by a propagation from l+1 to l+2 (Figure
                        // 5e: batch i+1 waits for batch i).
                        Counters::bump(&shared.counters.level_waits);
                        backoff.snooze();
                    }
                    t => break t,
                }
            };

            if next_trit == 1 {
                // Lines 40–44: next level holds k elements — merge, swing
                // the pointer and the two trits atomically, clear, recurse.
                let guard = self.reclaim.pin();
                let next_raw =
                    qc_mwcas::read(&shared.levels[l + 1], |w| guard.protect(|| w.load_raw()));
                debug_assert_ne!(next_raw, 0, "trit 1 level must hold an array");
                let next: Shared<Vec<u64>> = unsafe { Shared::from_raw(next_raw) };
                // SAFETY: protected by `guard`; also structurally stable
                // (only a propagation from level l — i.e. us — replaces it).
                let merged = merge_sorted(&sampled, unsafe { next.deref() });
                drop(guard);

                let new_block = self.reclaim.alloc(merged);
                let new_raw = new_block.into_raw();
                loop {
                    let tm = shared.tritmap_now();
                    let ok = qc_mwcas::mwcas(
                        &shared.arena,
                        &[
                            CasPair { word: &shared.levels[l + 1], old: next_raw, new: new_raw },
                            CasPair {
                                word: &shared.tritmap,
                                old: tm.0,
                                new: tm.after_propagate(l).0,
                            },
                        ],
                    );
                    if ok {
                        break;
                    }
                    Counters::bump(&shared.counters.dcas_retries);
                }
                Counters::bump(&shared.counters.propagations);
                Counters::bump(&shared.counters.merges);

                // The old k-array is unlinked by the DCAS.
                // SAFETY: unreachable, retired once.
                unsafe { self.reclaim.retire(next) };
                // Line 43: clear level l (plain store — the tritmap makes
                // every concurrent DCAS expecting this word fail until ⊥).
                shared.levels[l].store_plain(0);
                // SAFETY: unlinked by the clear above.
                unsafe { self.reclaim.retire(cur) };

                // Line 44: continue propagating the merged level.
                cur = new_block;
                l += 1;
            } else {
                // Lines 45–46: next level is empty — install the k sample
                // and stop.
                let new_block = self.reclaim.alloc(sampled);
                let new_raw = new_block.into_raw();
                loop {
                    let tm = shared.tritmap_now();
                    let ok = qc_mwcas::mwcas(
                        &shared.arena,
                        &[
                            // ⊥ → sample: fails while the previous owner of
                            // level l+1 has not stored ⊥ yet — exactly the
                            // paper's retry loop.
                            CasPair { word: &shared.levels[l + 1], old: 0, new: new_raw },
                            CasPair {
                                word: &shared.tritmap,
                                old: tm.0,
                                new: tm.after_propagate(l).0,
                            },
                        ],
                    );
                    if ok {
                        break;
                    }
                    Counters::bump(&shared.counters.dcas_retries);
                    backoff.snooze();
                }
                Counters::bump(&shared.counters.propagations);

                // Line 46: clear level l and finish.
                shared.levels[l].store_plain(0);
                // SAFETY: unlinked by the clear above.
                unsafe { self.reclaim.retire(cur) };
                return;
            }
        }
    }
}

/// Writer-side engine capability. `flush` is the default no-op: a sub-`b`
/// thread-local tail is invisible to queries **by design** (it is part of
/// the r-relaxation bound); compose [`Updater::pending`] into quiescent
/// accounting where exactness is required, as the keyed store does.
impl<T: OrderedBits> qc_common::engine::StreamIngest<T> for Updater<T> {
    fn update(&mut self, x: T) {
        Updater::update(self, x);
    }
}

impl<T: OrderedBits> std::fmt::Debug for Updater<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Updater")
            .field("node", &self.node)
            .field("pushed", &self.pushed)
            .field("buffered", &self.local.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Quancurrent;

    #[test]
    fn updates_below_b_stay_local() {
        let q = Quancurrent::<u64>::builder().k(4).b(4).build();
        let mut u = q.updater();
        u.update(1);
        u.update(2);
        assert_eq!(u.pending(), vec![1, 2]);
        assert_eq!(q.stream_len(), 0);
        assert_eq!(q.buffered_len(), 0);
    }

    #[test]
    fn full_local_buffer_moves_to_gather_sort() {
        let q = Quancurrent::<u64>::builder().k(4).b(4).build();
        let mut u = q.updater();
        for x in 0..4u64 {
            u.update(x);
        }
        assert!(u.pending().is_empty());
        assert_eq!(q.buffered_len(), 4);
        assert_eq!(q.stream_len(), 0, "no batch yet");
    }

    #[test]
    fn filling_one_buffer_triggers_batch() {
        let k = 4;
        let q = Quancurrent::<u64>::builder().k(k).b(4).build();
        let mut u = q.updater();
        for x in 0..(2 * k as u64) {
            u.update(x);
        }
        assert_eq!(q.stream_len(), 2 * k as u64);
        assert_eq!(q.buffered_len(), 0);
        let stats = q.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.propagations, 1, "batch propagates 0 → 1 immediately");
    }

    #[test]
    fn two_batches_merge_into_level_two() {
        let k = 4;
        let q = Quancurrent::<u64>::builder().k(k).b(4).seed(9).build();
        let mut u = q.updater();
        for x in 0..(4 * k as u64) {
            u.update(x);
        }
        assert_eq!(q.stream_len(), 4 * k as u64);
        let stats = q.stats();
        assert_eq!(stats.batches, 2);
        // First batch: 0→1 (empty). Second: 0→1 (full, merge) then 1→2
        // (empty).
        assert_eq!(stats.propagations, 3);
        assert_eq!(stats.merges, 1);
    }

    #[test]
    fn pushed_counts_all_updates() {
        let q = Quancurrent::<f64>::builder().k(4).b(2).build();
        let mut u = q.updater();
        for i in 0..37 {
            u.update(i as f64);
        }
        assert_eq!(u.pushed(), 37);
        // 37 = 2k·2 batches (32) + buffered; local holds 37 mod 2 = 1.
        assert_eq!(u.pending().len(), 1);
        assert_eq!(q.stream_len() + q.buffered_len() as u64 + 1, 37);
    }

    #[test]
    fn updaters_round_robin_fill_first() {
        let q = Quancurrent::<u64>::builder().k(4).b(2).numa_nodes(2).threads_per_node(2).build();
        assert_eq!(q.updater().node(), 0);
        assert_eq!(q.updater().node(), 0);
        assert_eq!(q.updater().node(), 1);
        assert_eq!(q.updater().node(), 1);
        assert_eq!(q.updater().node(), 0);
    }
}
