//! Operation counters: cheap, always-on observability.
//!
//! The benchmark harness uses these to report batch/propagation/snapshot
//! behaviour (and the §4.1 holes experiment); tests use them to assert
//! structural invariants like exact stream-size accounting.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Internal atomic counters (one instance in the shared sketch state).
#[derive(Default)]
pub(crate) struct Counters {
    /// Successful batch inserts into level 0 (each adds exactly 2k).
    pub batches: AtomicU64,
    /// Successful level propagations (either Algorithm 4 form).
    pub propagations: AtomicU64,
    /// Propagations that merged with a full next level (`[2,1] → [0,2]`).
    pub merges: AtomicU64,
    /// DCAS attempts that failed and were retried.
    pub dcas_retries: AtomicU64,
    /// Spins waiting for a busy (trit = 2) next level.
    pub level_waits: AtomicU64,
    /// Fresh snapshots constructed by queries.
    pub snapshots_built: AtomicU64,
    /// Double-collect rounds that had to retry (tritmap moved mid-read).
    pub snapshot_retries: AtomicU64,
    /// Queries answered from a cached snapshot.
    pub cache_hits: AtomicU64,
    /// Queries that had to rebuild (the paper's "miss rate" in Fig. 7c).
    pub cache_misses: AtomicU64,
    /// Holes observed by batch owners (stale slots copied; §4.1).
    pub holes: AtomicU64,
    /// Buffer hand-offs that found both Gather&Sort buffers full.
    pub gs_full_spins: AtomicU64,
}

impl Counters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SketchStats {
        SketchStats {
            batches: self.batches.load(Relaxed),
            propagations: self.propagations.load(Relaxed),
            merges: self.merges.load(Relaxed),
            dcas_retries: self.dcas_retries.load(Relaxed),
            level_waits: self.level_waits.load(Relaxed),
            snapshots_built: self.snapshots_built.load(Relaxed),
            snapshot_retries: self.snapshot_retries.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            holes: self.holes.load(Relaxed),
            gs_full_spins: self.gs_full_spins.load(Relaxed),
        }
    }
}

/// A point-in-time copy of the sketch's operation counters.
///
/// All counts are cumulative since sketch creation; under concurrency they
/// are relaxed sums (exact once the sketch is quiescent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Successful 2k-element batch inserts into level 0.
    pub batches: u64,
    /// Successful level propagations.
    pub propagations: u64,
    /// Propagations that merged with a full next level.
    pub merges: u64,
    /// Failed-and-retried DCAS attempts.
    pub dcas_retries: u64,
    /// Spins on a next level busy with another propagation.
    pub level_waits: u64,
    /// Fresh query snapshots constructed.
    pub snapshots_built: u64,
    /// Snapshot double-collect retries.
    pub snapshot_retries: u64,
    /// Queries served from a cached snapshot.
    pub cache_hits: u64,
    /// Queries that rebuilt the snapshot.
    pub cache_misses: u64,
    /// Holes observed by batch owners (§4.1).
    pub holes: u64,
    /// Hand-offs that found both Gather&Sort buffers momentarily full.
    pub gs_full_spins: u64,
}

impl SketchStats {
    /// Mean holes per completed batch — the quantity §4.1 bounds by 2.8.
    pub fn holes_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.holes as f64 / self.batches as f64
        }
    }

    /// Query cache miss rate (Figure 7c's right axis).
    pub fn miss_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SketchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batches={} propagations={} (merges={}) dcas_retries={} level_waits={} \
             snapshots={} (retries={}) cache hit/miss={}/{} holes={} ({:.3}/batch)",
            self.batches,
            self.propagations,
            self.merges,
            self.dcas_retries,
            self.level_waits,
            self.snapshots_built,
            self.snapshot_retries,
            self.cache_hits,
            self.cache_misses,
            self.holes,
            self.holes_per_batch(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let c = Counters::default();
        Counters::bump(&c.batches);
        Counters::add(&c.holes, 5);
        let s = c.snapshot();
        assert_eq!(s.batches, 1);
        assert_eq!(s.holes, 5);
        assert_eq!(s.holes_per_batch(), 5.0);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SketchStats::default();
        assert_eq!(s.holes_per_batch(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_is_fraction_of_queries() {
        let s = SketchStats { cache_hits: 75, cache_misses: 25, ..Default::default() };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = SketchStats { batches: 2, holes: 3, ..Default::default() };
        let out = format!("{s}");
        assert!(out.contains("batches=2"));
        assert!(out.contains("holes=3"));
    }
}
