//! The shared sketch state and the public `Quancurrent` handle.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use qc_common::bits::OrderedBits;
use qc_common::engine::{
    ConcurrentIngest, InstrumentedSketch, QuantileEstimator, SharedIngest, StreamIngest,
    VersionedSketch,
};
use qc_common::summary::{Summary, WeightedSummary};
use qc_mwcas::{Arena, MwcasWord};
use qc_reclaim::{Domain, DomainConfig, Shared};

use crate::config::{Builder, Config, MAX_LEVEL};
use crate::gather_sort::GatherSort;
use crate::query::QueryHandle;
use crate::snapshot::build_snapshot;
use crate::stats::{Counters, SketchStats};
use crate::tritmap::Tritmap;
use crate::updater::Updater;

/// Everything update and query handles share (paper Figure 1: the global
/// levels + tritmap, and the per-node Gather&Sort units).
pub(crate) struct SketchShared {
    pub(crate) cfg: Config,
    /// The packed level-state integer (Algorithm 1, line 7).
    pub(crate) tritmap: MwcasWord,
    /// `levels[i]` holds ⊥ (0) or the address of an immutable sorted
    /// array block; swung by DCAS together with the tritmap.
    pub(crate) levels: Box<[MwcasWord]>,
    /// One Gather&Sort unit per (simulated) NUMA node.
    pub(crate) gs: Box<[GatherSort]>,
    /// DCAS descriptor storage (see `qc_mwcas::Arena` for the lifetime
    /// story).
    pub(crate) arena: Arena,
    /// IBR domain that owns every level array block.
    pub(crate) domain: Domain,
    pub(crate) counters: Counters,
    /// Source of distinct per-handle RNG seeds.
    pub(crate) seed_ctr: AtomicU64,
}

impl SketchShared {
    /// Current tritmap (resolving any in-flight DCAS).
    pub(crate) fn tritmap_now(&self) -> Tritmap {
        Tritmap(qc_mwcas::read_plain(&self.tritmap))
    }
}

impl Drop for SketchShared {
    fn drop(&mut self) {
        // Unlink every level array so the domain reclaims it. No handles
        // exist any more (they hold the Arc), so plain reads are exact.
        let handle = self.domain.register();
        for word in self.levels.iter() {
            let raw = qc_mwcas::read_plain(word);
            if raw != 0 {
                word.store_plain(0);
                // SAFETY: unlinked above, never retired before (levels are
                // retired only when replaced or cleared, which repoints the
                // word first).
                unsafe { handle.retire(Shared::<Vec<u64>>::from_raw(raw)) };
            }
        }
        drop(handle);
        self.domain.reclaim_orphans();
    }
}

/// Quancurrent: a concurrent Quantiles sketch (SPAA'23).
///
/// The sketch estimates the quantile distribution of a data stream ingested
/// concurrently by many update threads, while serving queries at any time:
///
/// * each update thread owns an [`Updater`] (thread-local buffer of `b`
///   elements, Algorithm 2);
/// * full local buffers move into a per-node Gather&Sort unit whose owner
///   batches `2k` elements into the shared multi-level sketch (Algorithms
///   3–4), with propagation of different batches running **concurrently**
///   on different levels;
/// * each query thread owns a [`QueryHandle`] that answers from an atomic
///   snapshot (Algorithm 5), cached under the freshness bound ρ.
///
/// The sketch is an r-relaxed PAC quantiles estimator with
/// r = 4kS + (N−S)·b ([`Quancurrent::relaxation_bound`]).
///
/// # Example
///
/// ```
/// use quancurrent::Quancurrent;
///
/// let sketch = Quancurrent::<u64>::builder().k(128).b(4).seed(1).build();
/// let mut updater = sketch.updater();
/// for x in 0..100_000u64 {
///     updater.update(x);
/// }
/// let mut queries = sketch.query_handle();
/// let median = queries.query(0.5).unwrap();
/// assert!((40_000..60_000).contains(&median));
/// ```
pub struct Quancurrent<T: OrderedBits> {
    shared: Arc<SketchShared>,
    next_updater: AtomicUsize,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T: OrderedBits> Quancurrent<T> {
    /// Start configuring a sketch.
    pub fn builder() -> Builder<T> {
        Builder::new()
    }

    /// Build with an explicit configuration.
    pub fn with_config(cfg: Config) -> Self {
        let cfg = cfg.validated();
        let domain = Domain::with_config(DomainConfig::default());
        let shared = SketchShared {
            tritmap: MwcasWord::new(0),
            levels: (0..MAX_LEVEL).map(|_| MwcasWord::new(0)).collect(),
            gs: (0..cfg.numa_nodes).map(|_| GatherSort::new(cfg.k, cfg.b)).collect(),
            arena: Arena::new(),
            domain,
            counters: Counters::default(),
            seed_ctr: AtomicU64::new(cfg.seed),
            cfg,
        };
        Self {
            shared: Arc::new(shared),
            next_updater: AtomicUsize::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// The sketch's configuration.
    pub fn config(&self) -> &Config {
        &self.shared.cfg
    }

    /// Register an update thread. Placement is fill-first across nodes
    /// (§5.1): the first `threads_per_node` updaters share node 0, the
    /// next batch node 1, and so on.
    pub fn updater(&self) -> Updater<T> {
        let idx = self.next_updater.fetch_add(1, SeqCst);
        self.updater_on(self.shared.cfg.node_of(idx))
    }

    /// Register an update thread pinned to an explicit Gather&Sort unit.
    pub fn updater_on(&self, node: usize) -> Updater<T> {
        assert!(node < self.shared.cfg.numa_nodes, "node {node} out of range");
        Updater::new(self.shared.clone(), node)
    }

    /// Register a query thread (owns a cached snapshot; freshness governed
    /// by the configured ρ).
    pub fn query_handle(&self) -> QueryHandle<T> {
        QueryHandle::new(self.shared.clone())
    }

    /// Size of the stream currently represented by the shared levels.
    ///
    /// Buffered elements (Gather&Sort and thread-local buffers) are not yet
    /// visible — that is exactly the r-relaxation.
    pub fn stream_len(&self) -> u64 {
        self.shared.tritmap_now().stream_size(self.shared.cfg.k)
    }

    /// Elements currently sitting in Gather&Sort buffers (not yet batched).
    pub fn buffered_len(&self) -> usize {
        self.shared.gs.iter().map(GatherSort::pending_len).sum()
    }

    /// The relaxation bound r = 4kS + (N−S)·b for `n_threads` update
    /// threads (§3.1): a query may miss at most `r` recent updates.
    pub fn relaxation_bound(&self, n_threads: usize) -> u64 {
        self.shared.cfg.relaxation(n_threads)
    }

    /// Build a fresh snapshot and return its summary (no caching). For
    /// repeated queries prefer a [`QueryHandle`].
    pub fn snapshot(&self) -> WeightedSummary {
        let handle = self.shared.domain.register();
        build_snapshot(&self.shared, &handle).into_summary()
    }

    /// Elements currently retained in the shared levels: a trit-1 level
    /// holds `k`, a trit-2 level `2k`. Memory is proportional to this plus
    /// the fixed Gather&Sort buffers (`S · 2 · 2k` slot/stamp pairs).
    pub fn levels_retained(&self) -> usize {
        let tm = self.shared.tritmap_now();
        (0..MAX_LEVEL).map(|i| tm.trit(i) as usize * self.shared.cfg.k).sum()
    }

    /// **Quiescent** summary: the levels *plus* all Gather&Sort-buffered
    /// elements at weight 1. This is an extension over the paper (which
    /// never flushes); it gives exact end-of-stream accounting up to
    /// thread-local buffers (query [`Updater::pending`] for those).
    ///
    /// # Contract
    /// No updates may run concurrently; with updaters active the result is
    /// merely a (still safe) approximation.
    pub fn quiescent_summary(&self) -> WeightedSummary {
        let handle = self.shared.domain.register();
        let snap = build_snapshot(&self.shared, &handle);
        let mut pending: Vec<u64> = Vec::new();
        for gs in self.shared.gs.iter() {
            pending.extend(gs.pending());
        }
        pending.sort_unstable();
        let mut parts: Vec<(&[u64], u64)> = snap.parts.iter().map(|(v, w)| (&v[..], *w)).collect();
        if !pending.is_empty() {
            parts.push((&pending[..], 1));
        }
        WeightedSummary::from_parts(parts)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> SketchStats {
        self.shared.counters.snapshot()
    }

    /// Memory diagnostics: reclamation domain counters and DCAS descriptor
    /// footprint in bytes.
    pub fn memory_stats(&self) -> (qc_reclaim::DomainStats, usize) {
        (self.shared.domain.stats(), self.shared.arena.footprint_bytes())
    }

    /// Cumulative holes per Gather&Sort region j ∈ [0, 2k/b), summed over
    /// all units — the empirical counterpart of §4.1's per-region H_j
    /// analysis (region j is written by the thread whose reservation
    /// covered slots [j·b, (j+1)·b)). Divide by [`SketchStats::batches`]
    /// for per-batch expectations.
    pub fn hole_region_histogram(&self) -> Vec<u64> {
        let regions = 2 * self.shared.cfg.k / self.shared.cfg.b;
        let mut histogram = vec![0u64; regions];
        for gs in self.shared.gs.iter() {
            for (j, h) in gs.region_holes().into_iter().enumerate() {
                histogram[j] += h;
            }
        }
        histogram
    }

    /// Internal shared state (used by in-crate tests).
    #[cfg(test)]
    pub(crate) fn shared(&self) -> &Arc<SketchShared> {
        &self.shared
    }
}

impl<T: OrderedBits> Builder<T> {
    /// Build the configured sketch.
    pub fn build(&self) -> Quancurrent<T> {
        Quancurrent::with_config(self.config())
    }
}

/// Read-side engine capability: every call answers from a **fresh atomic
/// snapshot** (Algorithm 5). For repeated queries prefer a cached
/// [`QueryHandle`]; for batch queries use the overridden `cdf`/`quantiles`,
/// which collect one snapshot for all probes.
///
/// `stream_len` reports the weight visible in the shared levels — buffered
/// elements are invisible by design (the r-relaxation,
/// [`Quancurrent::relaxation_bound`]).
impl<T: OrderedBits> QuantileEstimator<T> for Quancurrent<T> {
    fn stream_len(&self) -> u64 {
        self.shared.tritmap_now().stream_size(self.shared.cfg.k)
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile_bits(phi).map(T::from_ordered_bits)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.snapshot().rank_bits(x.to_ordered_bits())
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.snapshot().cdf_bits(&bits)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        let snapshot = self.snapshot();
        phis.iter().map(|&phi| snapshot.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    /// The base ε(k) of the underlying Quantiles sketch. Relaxation adds
    /// a staleness term on top (see [`qc_common::error::relaxed_epsilon`]
    /// and [`Quancurrent::relaxation_bound`]).
    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.shared.cfg.k)
    }
}

/// Version capability: every transition of the shared levels is either a
/// batch installation or a propagation step, and both bump a counter at
/// their DCAS linearization point — their sum is a state version.
///
/// The counters are `Relaxed`, so a fully unsynchronized reader may see a
/// version slightly behind the levels it can already observe; under
/// external synchronization (a store's stripe lock) or at quiescence the
/// reading is exact, which is what the keyed store's summary cache needs.
/// Elements still inside Gather&Sort buffers or updater-local tails are
/// invisible to queries (the r-relaxation), so they correctly do not
/// advance the version.
impl<T: OrderedBits> VersionedSketch for Quancurrent<T> {
    fn version(&self) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        self.shared.counters.batches.load(Relaxed) + self.shared.counters.propagations.load(Relaxed)
    }
}

/// Multi-writer engine capability: each writer is an owned [`Updater`]
/// feeding the paper's three-level ingestion path.
impl<T: OrderedBits> ConcurrentIngest<T> for Quancurrent<T> {
    fn writer(&self) -> Box<dyn StreamIngest<T> + Send + '_> {
        Box::new(self.updater())
    }
}

/// Shared-access leases: an [`Updater`] shares ownership of the sketch
/// internals (it holds the `Arc`), so it is exactly the self-contained
/// handle [`SharedIngest`] asks for and every lease is granted.
///
/// The handle keeps the paper's relaxed semantics verbatim: its
/// [`StreamIngest::flush`] is a no-op, so a sub-`b` thread-local tail
/// stays invisible to queries (part of the r-relaxation bound). Layers
/// that need exact post-flush accounting wrap the updater — see the keyed
/// store's concurrent engine, which re-homes taken tails via
/// [`Updater::take_pending`].
impl<T: OrderedBits> SharedIngest<T> for Quancurrent<T> {
    fn try_writer(&self) -> Option<Box<dyn StreamIngest<T> + Send>> {
        Some(Box::new(self.updater()))
    }
}

/// Telemetry bridge: the paper's operation counters ([`SketchStats`])
/// exposed under stable names, so DCAS retries and snapshot miss rates
/// surface in a metrics registry next to store- and server-level
/// instruments.
impl<T: OrderedBits> InstrumentedSketch for Quancurrent<T> {
    fn internal_counters(&self) -> Vec<(&'static str, u64)> {
        let stats = self.stats();
        vec![
            ("batches", stats.batches),
            ("propagations", stats.propagations),
            ("merges", stats.merges),
            ("dcas_retries", stats.dcas_retries),
            ("level_waits", stats.level_waits),
            ("snapshots_built", stats.snapshots_built),
            ("snapshot_retries", stats.snapshot_retries),
            ("snapshot_cache_hits", stats.cache_hits),
            ("snapshot_cache_misses", stats.cache_misses),
            ("holes", stats.holes),
            ("gs_full_spins", stats.gs_full_spins),
        ]
    }
}

impl<T: OrderedBits> std::fmt::Debug for Quancurrent<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quancurrent")
            .field("k", &self.shared.cfg.k)
            .field("b", &self.shared.cfg.b)
            .field("nodes", &self.shared.cfg.numa_nodes)
            .field("tritmap", &self.shared.tritmap_now())
            .field("stream_len", &self.stream_len())
            .finish()
    }
}
