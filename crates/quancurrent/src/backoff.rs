//! Spin-then-yield backoff for the algorithm's wait loops.
//!
//! The paper's pseudocode busy-waits (`while ¬DCAS … do {}`); on the
//! evaluation testbed every thread has its own core, so pure spinning is
//! right. On oversubscribed hosts (more threads than cores) the thread
//! being waited on may be preempted, and a pure spin then burns its whole
//! quantum. A handful of `spin_loop` hints followed by `yield_now` keeps
//! the fast path identical while letting oversubscribed schedules make
//! progress.

/// Escalating waiter: spin briefly, then yield to the scheduler.
#[derive(Default)]
pub(crate) struct Backoff {
    spins: u32,
}

impl Backoff {
    /// Spin budget before the first yield.
    const SPIN_LIMIT: u32 = 64;

    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Wait a beat; escalates from `spin_loop` hints to `yield_now`.
    #[inline]
    pub(crate) fn snooze(&mut self) {
        if self.spins < Self::SPIN_LIMIT {
            self.spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_escalates_past_the_spin_budget() {
        let mut b = Backoff::new();
        for _ in 0..Backoff::SPIN_LIMIT + 5 {
            b.snooze();
        }
        assert!(b.spins >= Backoff::SPIN_LIMIT);
    }
}
