//! Sketch configuration (the paper's parameters and constants).

/// Number of trits the tritmap can hold in 62 bits (3³⁸ < 2⁶² < 3³⁹), and
/// therefore the maximum number of levels. The paper uses a 31-digit
/// base-3 integer; we keep the same bound — level 30 already summarizes
/// `2k·2³⁰` elements, unreachable in any realistic run.
pub const MAX_LEVEL: usize = 31;

/// Configuration of a [`crate::Quancurrent`] sketch.
///
/// Defaults follow the paper's main experiments (`k = 4096`, `b = 16`,
/// `S = 1` Gather&Sort unit, `ρ = 1` i.e. answer from a cached snapshot
/// only while it is perfectly fresh).
#[derive(Clone, Debug)]
pub struct Config {
    /// Level size: every level holds `0`, `k`, or `2k` elements. The paper
    /// sweeps 256–4096 (Figure 7a).
    pub k: usize,
    /// Thread-local buffer size `b` (Figure 7b sweeps 1–64).
    pub b: usize,
    /// Number of simulated NUMA nodes `S` = number of Gather&Sort units.
    pub numa_nodes: usize,
    /// Threads per node for fill-first updater placement (§5.1 pins 8
    /// threads per node before overflowing to the next).
    pub threads_per_node: usize,
    /// Query freshness bound ρ: a cached snapshot of stream size `n_old`
    /// may answer while `n_now / n_old ≤ ρ`. `0.0` disables caching
    /// (every query rebuilds); values `≥ 1.0` allow staleness `ε′ = ρ−1`.
    pub rho: f64,
    /// Seed for all sampling coin flips (per-handle streams are split off
    /// deterministically).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { k: 4096, b: 16, numa_nodes: 1, threads_per_node: 8, rho: 1.0, seed: 0xC0FFEE }
    }
}

impl Config {
    /// Validate and normalize. Called by the builder.
    pub(crate) fn validated(self) -> Self {
        assert!(self.k >= 2, "k must be at least 2");
        assert!(self.b >= 1, "b must be at least 1");
        assert!(
            (2 * self.k).is_multiple_of(self.b),
            "b must divide 2k (buffers are filled in whole b-sized regions); got k={}, b={}",
            self.k,
            self.b
        );
        assert!(self.numa_nodes >= 1, "at least one Gather&Sort unit is required");
        assert!(self.threads_per_node >= 1, "threads_per_node must be at least 1");
        assert!(
            self.rho == 0.0 || self.rho >= 1.0,
            "rho must be 0 (no caching) or ≥ 1 (staleness ratio bound)"
        );
        self
    }

    /// The relaxation bound r = 4kS + (N−S)·b for `n_threads` updaters
    /// (§3.1): at most `4k` elements per Gather&Sort unit plus a local
    /// buffer per thread that is not a (buffer-emptying) batch owner.
    pub fn relaxation(&self, n_threads: usize) -> u64 {
        qc_common::error::quancurrent_relaxation(self.k, self.b, n_threads, self.numa_nodes)
    }

    /// Fill-first node placement: which Gather&Sort unit the `idx`-th
    /// registered updater uses (§5.1: "nodes were first filled before
    /// overflowing to other NUMA nodes").
    pub fn node_of(&self, idx: usize) -> usize {
        (idx / self.threads_per_node) % self.numa_nodes
    }
}

/// Fluent builder for [`crate::Quancurrent`].
///
/// ```
/// use quancurrent::Quancurrent;
///
/// let sketch = Quancurrent::<f64>::builder()
///     .k(1024)
///     .b(16)
///     .numa_nodes(4)
///     .rho(1.05)
///     .seed(42)
///     .build();
/// assert_eq!(sketch.config().k, 1024);
/// ```
#[derive(Clone, Debug)]
pub struct Builder<T: qc_common::OrderedBits> {
    cfg: Config,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T: qc_common::OrderedBits> Default for Builder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: qc_common::OrderedBits> Builder<T> {
    /// Start from defaults.
    pub fn new() -> Self {
        Self { cfg: Config::default(), _marker: std::marker::PhantomData }
    }

    /// Level size `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k;
        self
    }

    /// Thread-local buffer size `b`.
    pub fn b(mut self, b: usize) -> Self {
        self.cfg.b = b;
        self
    }

    /// Number of Gather&Sort units (simulated NUMA nodes).
    pub fn numa_nodes(mut self, s: usize) -> Self {
        self.cfg.numa_nodes = s;
        self
    }

    /// Threads per node for fill-first placement.
    pub fn threads_per_node(mut self, t: usize) -> Self {
        self.cfg.threads_per_node = t;
        self
    }

    /// Query freshness bound ρ (0 disables snapshot caching).
    pub fn rho(mut self, rho: f64) -> Self {
        self.cfg.rho = rho;
        self
    }

    /// Equivalent staleness form: ρ = 1 + ε′ (how Figures 6c/7c label it).
    pub fn staleness_epsilon(mut self, eps_prime: f64) -> Self {
        assert!(eps_prime >= 0.0);
        self.cfg.rho = 1.0 + eps_prime;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// The resulting configuration (validated).
    pub fn config(&self) -> Config {
        self.cfg.clone().validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_headline_parameters() {
        let c = Config::default().validated();
        assert_eq!(c.k, 4096);
        assert_eq!(c.b, 16);
        assert_eq!(c.threads_per_node, 8);
    }

    #[test]
    fn relaxation_formula() {
        let c = Config { k: 4096, b: 2048, numa_nodes: 1, ..Default::default() };
        assert_eq!(c.relaxation(8), 4 * 4096 + 7 * 2048); // §5.5: ≈ 30K
        let c4 = Config { k: 4096, b: 2048, numa_nodes: 4, ..Default::default() };
        assert_eq!(c4.relaxation(32), 4 * 4096 * 4 + 28 * 2048); // §5.5: ≈ 122K
    }

    #[test]
    fn fill_first_placement() {
        let c = Config { numa_nodes: 4, threads_per_node: 8, ..Default::default() };
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.node_of(31), 3);
        assert_eq!(c.node_of(32), 0); // wraps beyond 4 nodes × 8 threads
    }

    #[test]
    #[should_panic(expected = "divide 2k")]
    fn b_must_divide_2k() {
        let _ = Config { k: 8, b: 3, ..Default::default() }.validated();
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn fractional_rho_below_one_rejected() {
        let _ = Config { rho: 0.5, ..Default::default() }.validated();
    }

    #[test]
    fn builder_round_trip() {
        let c =
            Builder::<u64>::new().k(64).b(8).numa_nodes(2).threads_per_node(4).rho(0.0).config();
        assert_eq!((c.k, c.b, c.numa_nodes, c.threads_per_node), (64, 8, 2, 4));
        assert_eq!(c.rho, 0.0);
    }

    #[test]
    fn staleness_epsilon_sets_rho() {
        let c = Builder::<u64>::new().staleness_epsilon(0.05).config();
        assert!((c.rho - 1.05).abs() < 1e-12);
    }
}
