//! A top-like console for a running qc-server: poll the `Metrics` frame
//! and render the registry's instruments in place.
//!
//! ```sh
//! # watch the default address at the default cadence
//! cargo run --release --example metrics_watch
//!
//! # custom address / poll interval / one-shot dump
//! cargo run --release --example metrics_watch -- 127.0.0.1:7071 2
//! cargo run --release --example metrics_watch -- 127.0.0.1:7071 --once
//! ```
//!
//! Everything shown comes over the wire from the server's own telemetry:
//! counters and gauges as plain values, latencies as the CRC-checked
//! summary frames the store itself serializes — the watcher re-derives
//! p50/p90/p99/p999 client-side from the sketch, it is not trusting
//! server-side percentile math.

use std::time::Duration;

use quancurrent_suite::server::Client;

fn main() {
    let mut addr = "127.0.0.1:7071".to_string();
    let mut interval = Duration::from_secs(1);
    let mut once = false;
    for arg in std::env::args().skip(1) {
        if arg == "--once" {
            once = true;
        } else if let Ok(secs) = arg.parse::<u64>() {
            interval = Duration::from_secs(secs.max(1));
        } else {
            addr = arg;
        }
    }

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            eprintln!("start a server first: cargo run --release --example serve");
            std::process::exit(1);
        }
    };

    loop {
        let snap = match client.metrics() {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("metrics poll failed: {e}");
                std::process::exit(1);
            }
        };
        if !once {
            // ANSI clear + home: redraw in place, top-style.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "qc-server {addr} — {} counters, {} gauges, {} latency sketches",
            snap.counters.len(),
            snap.gauges.len(),
            snap.latencies.len()
        );
        println!();
        print!("{}", snap.render_text());
        if once {
            return;
        }
        std::thread::sleep(interval);
    }
}
