//! Exploratory data analysis: compare the distributions of two data sets
//! via sketch CDFs, and cross-check the three estimators in this workspace
//! (exact oracle, sequential sketch, concurrent sketch) against each other
//! — the SeeDB-style use case the paper's introduction cites [22].
//!
//! ```sh
//! cargo run --release --example exploratory_analysis
//! ```

use qc_sequential::Sketch;
use qc_workloads::exact::ExactOracle;
use qc_workloads::streams::{Distribution, StreamGen};
use quancurrent::Quancurrent;

const N: usize = 2_000_000;

fn main() {
    // Two "datasets": last week's metric (normal) and this week's (normal
    // with a shifted tail).
    let mut last_week = StreamGen::new(Distribution::Normal { mean: 100.0, std_dev: 15.0 }, 1);
    let mut this_week = StreamGen::new(Distribution::Normal { mean: 104.0, std_dev: 22.0 }, 2);

    // Ingest both concurrently into separate sketches (4 threads each).
    let sketch_a = Quancurrent::<f64>::builder().k(512).b(16).seed(10).build();
    let sketch_b = Quancurrent::<f64>::builder().k(512).b(16).seed(11).build();
    let data_a = last_week.take_f64(N);
    let data_b = this_week.take_f64(N);

    std::thread::scope(|s| {
        for chunk in data_a.chunks(N / 4) {
            let mut updater = sketch_a.updater();
            s.spawn(move || {
                for &x in chunk {
                    updater.update(x);
                }
            });
        }
        for chunk in data_b.chunks(N / 4) {
            let mut updater = sketch_b.updater();
            s.spawn(move || {
                for &x in chunk {
                    updater.update(x);
                }
            });
        }
    });

    let mut qa = sketch_a.query_handle();
    let mut qb = sketch_b.query_handle();

    println!("quantile    last_week   this_week    shift");
    println!("-------------------------------------------");
    for phi in [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
        let a = qa.query(phi).unwrap();
        let b = qb.query(phi).unwrap();
        println!("{phi:>7.2}  {a:>10.2}  {b:>10.2}  {:>+7.2}", b - a);
    }

    // Cross-validation: concurrent vs sequential vs exact on dataset B.
    let mut seq = Sketch::<f64>::with_seed(512, 3);
    for &x in &data_b {
        seq.update(x);
    }
    let oracle = ExactOracle::from_values(&data_b);

    println!();
    println!("cross-check on this_week (n = {N}):");
    println!("quantile      exact   sequential  quancurrent");
    println!("---------------------------------------------");
    let mut max_gap: f64 = 0.0;
    for phi in [0.1, 0.5, 0.9, 0.99] {
        let exact: f64 = oracle.quantile(phi).unwrap();
        let s = seq.quantile(phi).unwrap();
        let q = qb.query(phi).unwrap();
        max_gap = max_gap.max(oracle.rank_error(phi, qc_common::OrderedBits::to_ordered_bits(q)));
        println!("{phi:>8.2}  {exact:>9.2}  {s:>11.2}  {q:>11.2}");
    }
    println!();
    println!(
        "largest quancurrent rank error: {max_gap:.5} (ε(512) ≈ {:.5})",
        qc_common::error::sequential_epsilon(512)
    );
    assert!(max_gap < 4.0 * qc_common::error::sequential_epsilon(512));
}
