//! The freshness/throughput dial: run the same mixed workload with three
//! freshness settings and watch query throughput, miss rate, and answer
//! staleness trade off — §5.3 of the paper as a runnable demo.
//!
//! ```sh
//! cargo run --release --example freshness_dashboard
//! ```

use quancurrent::Quancurrent;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Barrier;

const UPDATES: u64 = 4_000_000;
const UPDATE_THREADS: usize = 2;
const QUERY_THREADS: usize = 2;

struct Outcome {
    queries: u64,
    misses: u64,
    max_staleness_ratio: f64,
    elapsed: std::time::Duration,
}

fn run(rho: f64) -> Outcome {
    let sketch = Quancurrent::<f64>::builder().k(1024).b(16).rho(rho).seed(3).build();

    // Prefill so the ratio test has a base.
    {
        let mut updater = sketch.updater_on(0);
        for i in 0..200_000 {
            updater.update(i as f64);
        }
    }

    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let max_staleness = AtomicU64::new(f64::to_bits(1.0));
    let barrier = Barrier::new(UPDATE_THREADS + QUERY_THREADS + 1);

    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..UPDATE_THREADS {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..UPDATES / UPDATE_THREADS as u64 {
                    updater.update((i ^ (t as u64) << 40) as f64);
                }
            });
        }
        for _ in 0..QUERY_THREADS {
            let mut handle = sketch.query_handle();
            let barrier = &barrier;
            let stop = &stop;
            let queries = &queries;
            let misses = &misses;
            let max_staleness = &max_staleness;
            let sketch = &sketch;
            s.spawn(move || {
                barrier.wait();
                let mut local_q = 0u64;
                let mut phi = 0.1;
                while !stop.load(SeqCst) {
                    let _ = handle.query(phi);
                    phi = (phi + 0.037) % 1.0;
                    local_q += 1;
                    // Observe how stale the served snapshot is right now.
                    let cached = handle.cached_stream_len();
                    if cached > 0 {
                        let now = sketch.stream_len();
                        let ratio = now as f64 / cached as f64;
                        let mut cur = f64::from_bits(max_staleness.load(SeqCst));
                        while ratio > cur {
                            match max_staleness.compare_exchange(
                                f64::to_bits(cur),
                                f64::to_bits(ratio),
                                SeqCst,
                                SeqCst,
                            ) {
                                Ok(_) => break,
                                Err(seen) => cur = f64::from_bits(seen),
                            }
                        }
                    }
                }
                queries.fetch_add(local_q, SeqCst);
                let (_h, m) = handle.cache_stats();
                misses.fetch_add(m, SeqCst);
            });
        }
        barrier.wait();
        // Wait for updaters (they exit on their own); then stop queriers.
        while sketch.stream_len() + sketch.relaxation_bound(UPDATE_THREADS) < 200_000 + UPDATES {
            std::thread::yield_now();
        }
        stop.store(true, SeqCst);
    });

    Outcome {
        queries: queries.load(SeqCst),
        misses: misses.load(SeqCst),
        max_staleness_ratio: f64::from_bits(max_staleness.load(SeqCst)),
        elapsed: start.elapsed(),
    }
}

fn main() {
    println!("mixed workload: {UPDATE_THREADS} updaters ({UPDATES} updates) + {QUERY_THREADS} queriers\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>14}",
        "rho", "queries/s", "miss_rate", "max_stale", "elapsed"
    );
    for rho in [0.0, 1.001, 1.05, 1.5] {
        let o = run(rho);
        let qps = o.queries as f64 / o.elapsed.as_secs_f64();
        let miss = if o.queries == 0 { 0.0 } else { o.misses as f64 / o.queries as f64 };
        let label = if rho == 0.0 { "no cache".to_string() } else { format!("{rho}") };
        println!(
            "{label:>10} {qps:>12.0} {:>11.2}% {:>10.4} {:>14?}",
            miss * 100.0,
            o.max_staleness_ratio,
            o.elapsed
        );
    }
    println!("\nexpected shape (paper §5.3): higher ρ ⇒ more queries/s, lower miss");
    println!("rate, but answers served from older snapshots (max_stale grows).");
}
