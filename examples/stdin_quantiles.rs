//! A command-line quantiles tool: stream numbers in on stdin, get the
//! distribution out — the "sketch as a unix filter" use case.
//!
//! ```sh
//! seq 1 1000000 | shuf | cargo run --release --example stdin_quantiles
//! cargo run --release --example stdin_quantiles -- 0.5 0.99 < data.txt
//! ```
//!
//! Ingestion is pipelined across a small thread pool (reader thread
//! parses, worker threads ingest via their own `Updater` handles), so the
//! example also demonstrates the handle-per-thread API under a realistic
//! I/O-bound pipeline.

use quancurrent::Quancurrent;
use std::io::{BufRead, Write};
use std::sync::mpsc;

const WORKERS: usize = 2;
const CHUNK: usize = 8192;

fn main() {
    // Quantiles requested on the command line (defaults below).
    let mut phis: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse::<f64>().unwrap_or_else(|_| panic!("bad quantile {a:?}")))
        .collect();
    if phis.is_empty() {
        phis = vec![0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99];
    }
    phis.sort_by(f64::total_cmp);

    let sketch = Quancurrent::<f64>::builder().k(1024).b(64).build();

    let (parsed, lines_read, skipped) = std::thread::scope(|s| {
        let mut senders = Vec::new();
        for _ in 0..WORKERS {
            let (tx, rx) = mpsc::sync_channel::<Vec<f64>>(4);
            let mut updater = sketch.updater();
            senders.push(tx);
            s.spawn(move || {
                while let Ok(chunk) = rx.recv() {
                    for x in chunk {
                        updater.update(x);
                    }
                }
            });
        }

        // Reader/parser on this thread.
        let stdin = std::io::stdin();
        let mut lines = 0u64;
        let mut parsed = 0u64;
        let mut skipped = 0u64;
        let mut chunk = Vec::with_capacity(CHUNK);
        let mut next = 0usize;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            lines += 1;
            match line.trim().parse::<f64>() {
                Ok(x) if !x.is_nan() => {
                    parsed += 1;
                    chunk.push(x);
                    if chunk.len() == CHUNK {
                        senders[next].send(std::mem::take(&mut chunk)).unwrap();
                        chunk.reserve(CHUNK);
                        next = (next + 1) % WORKERS;
                    }
                }
                _ => skipped += 1,
            }
        }
        if !chunk.is_empty() {
            senders[next].send(chunk).unwrap();
        }
        drop(senders); // workers drain and exit
        (parsed, lines, skipped)
    });

    let mut out = std::io::stdout().lock();
    writeln!(out, "# lines: {lines_read}, ingested: {parsed}, skipped: {skipped}").unwrap();
    writeln!(
        out,
        "# visible to sketch: {} (relaxation bound {})",
        sketch.stream_len(),
        sketch.relaxation_bound(WORKERS)
    )
    .unwrap();

    let mut handle = sketch.query_handle();
    for &phi in &phis {
        match handle.query(phi) {
            Some(v) => writeln!(out, "q{phi:<6} {v}").unwrap(),
            None => writeln!(out, "q{phi:<6} (empty)").unwrap(),
        }
    }
}
