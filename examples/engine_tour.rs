//! Tour of the unified sketch-engine API: the same code drives every
//! backend in the workspace through `Box<dyn SketchEngine<f64>>`, then a
//! tiered keyed store shows promotion and cool-down in action.
//!
//! ```text
//! cargo run --release --example engine_tour
//! ```

use qc_fcds::FcdsEngine;
use qc_sequential::Sketch;
use quancurrent_suite::store::engine::{ConcurrentEngine, TieredEngine};
use quancurrent_suite::{SketchEngine, SketchStore, StoreConfig};

fn main() {
    let k = 256;
    let backends: Vec<(&str, Box<dyn SketchEngine<f64>>)> = vec![
        ("sequential", Box::new(Sketch::<f64>::with_seed(k, 1))),
        ("quancurrent", Box::new(ConcurrentEngine::<f64>::new(k, 4, 2))),
        ("fcds", Box::new(FcdsEngine::<f64>::with_seed(k, 1024, 3))),
        ("tiered", Box::new(TieredEngine::<f64>::new(k, 4, 4, 4096))),
    ];

    // One loop, four backends: ingest a skewed stream, flush, query.
    println!("{:<12} {:>10} {:>12} {:>12} {:>10}", "engine", "n", "p50", "p99", "eps(k)");
    for (name, mut engine) in backends {
        for i in 0..100_000u64 {
            // Smooth ramp with a heavy tail every 1000 elements.
            let x = if i % 1000 == 0 { 1e6 + i as f64 } else { (i % 10_000) as f64 };
            engine.update(x);
        }
        engine.flush();
        let [p50, p99] = match engine.quantiles(&[0.5, 0.99])[..] {
            [a, b] => [a.unwrap(), b.unwrap()],
            _ => unreachable!(),
        };
        println!(
            "{:<12} {:>10} {:>12.1} {:>12.1} {:>10.5}",
            name,
            engine.stream_len(),
            p50,
            p99,
            engine.error_bound()
        );
    }

    // The tiered store: cold keys stay cheap, the hot key promotes.
    let store = SketchStore::new(
        StoreConfig::default().stripes(16).k(k).b(4).seed(9).promotion_threshold(4096),
    );
    for i in 0..20_000 {
        store.update("checkout-latency", i as f64);
    }
    for tenant in 0..500 {
        let key = format!("tenant-{tenant:03}");
        store.update_many(&key, &[1.0, 2.0, 3.0, 4.0]);
    }
    let stats = store.stats();
    println!(
        "\nstore: {} keys ({} hot / {} cold), {} elements, {} retained words",
        stats.keys, stats.hot_keys, stats.cold_keys, stats.stream_len, stats.retained
    );

    // Two idle cool-down sweeps demote the hot key again.
    store.cool_down();
    let demoted = store.cool_down();
    let stats = store.stats();
    println!(
        "after cool-down: {demoted} demoted -> {} hot / {} cold, {} retained words",
        stats.hot_keys, stats.cold_keys, stats.retained
    );
}
