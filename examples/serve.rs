//! Run a quantile-serving daemon over the keyed sketch store.
//!
//! ```sh
//! # serve on the default address (UDP ingest on an ephemeral port)
//! cargo run --release --example serve
//!
//! # custom address / pool size / UDP ingest address
//! cargo run --release --example serve -- 127.0.0.1:7071 16 127.0.0.1:7072
//! ```
//!
//! The server answers the `qc-server` binary protocol (see the "Serving"
//! section of the README for the frame table); drive it with
//! `examples/client_load.rs` or any `qc_server::Client`. The process
//! serves until stdin closes or a `quit` line arrives, then shuts down
//! gracefully and prints the final store statistics.

use quancurrent_suite::server::{IngestConfig, Server, ServerConfig};
use quancurrent_suite::StoreConfig;
use std::io::BufRead;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let pool_threads: usize =
        args.next().map(|s| s.parse().expect("pool size must be a number")).unwrap_or(8);
    let udp_addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_string());

    let cfg = ServerConfig {
        pool_threads,
        store: StoreConfig::default().stripes(32).k(256).b(4).seed(0xDAEC0DE),
        ingest: Some(IngestConfig::default().bind(udp_addr)),
        ..ServerConfig::default()
    };
    let handle = Server::bind(&addr, cfg).expect("bind serving address");
    println!("qc-server listening on {} ({pool_threads} workers)", handle.local_addr());
    if let Some(udp) = handle.ingest_addr() {
        println!("udp ingest on {udp} (drive it with examples/udp_firehose.rs)");
    }
    println!("type 'quit' (or close stdin) for graceful shutdown");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {
                let stats = handle.store().stats();
                println!(
                    "keys={} updates={} stream_len={} ingests={} bytes_in={} bytes_out={}",
                    stats.keys,
                    stats.updates,
                    stats.stream_len,
                    stats.ingests,
                    stats.bytes_in,
                    stats.bytes_out
                );
            }
            Err(_) => break,
        }
    }

    let stats = handle.store().stats();
    handle.shutdown();
    println!(
        "shut down cleanly: {} keys, {} updates, stream_len {}",
        stats.keys, stats.updates, stats.stream_len
    );
}
