//! Keyed ingestion through the sharded sketch store: stream `key value`
//! pairs in on stdin, get per-key and union quantiles out — the
//! "high-cardinality aggregation as a unix filter" use case.
//!
//! ```sh
//! # three keys, a million points
//! awk 'BEGIN { for (i = 0; i < 1000000; i++)
//!       printf "host%d %f\n", i % 3, i / 7.0 }' \
//!   | cargo run --release --example keyed_ingest
//!
//! # choose the reported quantiles
//! cargo run --release --example keyed_ingest -- 0.5 0.99 < keyed.txt
//! ```
//!
//! Each line is `<key> <value>`; malformed lines are counted and skipped.
//! After EOF the example also round-trips every key through the versioned
//! wire format into a second store (`snapshot_bytes` → `ingest_bytes`) and
//! cross-checks the union median, demonstrating the full snapshot /
//! interchange / merge path a multi-process deployment uses.

use quancurrent_suite::{SketchStore, StoreConfig};
use std::io::{BufRead, Write};

fn main() {
    let mut phis: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse::<f64>().unwrap_or_else(|_| panic!("bad quantile {a:?}")))
        .collect();
    if phis.is_empty() {
        phis = vec![0.5, 0.9, 0.99];
    }
    phis.sort_by(f64::total_cmp);

    let store = SketchStore::new(StoreConfig::default().stripes(16).k(256).b(4).seed(1));

    let stdin = std::io::stdin();
    let mut lines = 0u64;
    let mut skipped = 0u64;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        lines += 1;
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next().map(str::parse::<f64>)) {
            (Some(key), Some(Ok(v))) if !v.is_nan() => store.update(key, v),
            _ => skipped += 1,
        }
    }

    let stats = store.stats();
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "# lines: {lines}, ingested: {}, skipped: {skipped}, keys: {}, stripes: {}",
        stats.updates, stats.keys, stats.stripes
    )
    .unwrap();

    let mut keys = store.keys();
    keys.sort();
    for key in &keys {
        let qs: Vec<String> = phis
            .iter()
            .map(|&phi| match store.query(key, phi) {
                Some(v) => format!("q{phi}={v:.3}"),
                None => format!("q{phi}=(empty)"),
            })
            .collect();
        writeln!(out, "{key:<24} {}", qs.join("  ")).unwrap();
    }

    if !keys.is_empty() {
        let union: Vec<String> = phis
            .iter()
            .map(|&phi| match store.merged_query(&keys, phi) {
                Some(v) => format!("q{phi}={v:.3}"),
                None => format!("q{phi}=(empty)"),
            })
            .collect();
        writeln!(out, "{:<24} {}", "(union)", union.join("  ")).unwrap();

        // Round-trip every key through the wire format into a fresh store,
        // as a replica process would, and cross-check the union median.
        let replica: SketchStore =
            SketchStore::new(StoreConfig::default().stripes(4).k(256).b(4).seed(2));
        let mut bytes = 0usize;
        for key in &keys {
            let frame = store.snapshot_bytes(key).expect("key exists");
            bytes += frame.len();
            replica.ingest_bytes(key, &frame).expect("own frames decode");
        }
        let local = store.merged_query(&keys, 0.5);
        let remote = replica.merged_query(&keys, 0.5);
        writeln!(
            out,
            "# wire round-trip: {} keys, {bytes} bytes; union median {:?} -> replica {:?}",
            keys.len(),
            local,
            remote
        )
        .unwrap();
    }
}
