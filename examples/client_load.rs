//! Load-drive a running `qc-server` (see `examples/serve.rs`): concurrent
//! writer and querier connections, then a final accuracy spot-check.
//!
//! ```sh
//! # terminal 1
//! cargo run --release --example serve
//!
//! # terminal 2: 4 writers × 100k values in batches of 256, 2 queriers
//! cargo run --release --example client_load -- 127.0.0.1:7071 4 100000 256
//! ```
//!
//! Each writer streams deterministic values into its own key and a shared
//! key; queriers poll quantiles while the write load runs. At the end the
//! example prints per-key p50/p99, the union quantiles, and end-to-end
//! update throughput.

use quancurrent_suite::server::Client;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let writers: usize = args.next().map(|s| s.parse().expect("writers")).unwrap_or(4);
    let per_writer: usize = args.next().map(|s| s.parse().expect("values")).unwrap_or(100_000);
    let batch: usize = args.next().map(|s| s.parse().expect("batch")).unwrap_or(256);

    println!("driving {addr}: {writers} writers × {per_writer} values, batch {batch}");
    let done = Arc::new(AtomicBool::new(false));
    // Snapshot the daemon's update counter before any writer starts: the
    // monitor gates on the delta, so back-to-back runs against one live
    // daemon (the documented workflow) measure only their own work.
    let baseline =
        Client::connect(&addr).expect("baseline connect").stats().expect("baseline stats").updates;
    let start = Instant::now();

    std::thread::scope(|s| {
        for w in 0..writers {
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("writer connect");
                let key = format!("load-{w}");
                let values: Vec<f64> =
                    (0..per_writer).map(|i| ((i * 2654435761) % 1_000_000) as f64).collect();
                for chunk in values.chunks(batch.max(1)) {
                    client.update_many(&key, chunk).expect("update_many");
                    client.update_many("load-shared", chunk).expect("shared update_many");
                }
            });
        }
        for q in 0..2usize {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("querier connect");
                let mut polls = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let phi = if q == 0 { 0.5 } else { 0.99 };
                    let _ = client.query("load-shared", phi).expect("query");
                    polls += 1;
                }
                println!("querier {q}: {polls} polls while load ran");
            });
        }
        // Release the queriers once this run's writers are fully acked.
        let done = Arc::clone(&done);
        let addr2 = addr.clone();
        s.spawn(move || {
            let mut client = Client::connect(&addr2).expect("monitor connect");
            let target = baseline + (writers * per_writer * 2) as u64;
            loop {
                let stats = client.stats().expect("stats");
                if stats.updates >= target {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    let elapsed = start.elapsed();
    let total = (writers * per_writer * 2) as f64;
    println!(
        "ingested {total} values in {:.2?} ({:.0} updates/s end-to-end)",
        elapsed,
        total / elapsed.as_secs_f64()
    );

    let mut client = Client::connect(&addr).expect("report connect");
    let mut keys: Vec<String> = (0..writers).map(|w| format!("load-{w}")).collect();
    keys.push("load-shared".to_string());
    for key in &keys {
        let p50 = client.query(key, 0.5).expect("query");
        let p99 = client.query(key, 0.99).expect("query");
        println!("{key:<14} p50={p50:?} p99={p99:?}");
    }
    let union = client.merged_query(&keys, 0.5).expect("merged query");
    println!("{:<14} p50={union:?}", "(union)");
    let stats = client.stats().expect("stats");
    println!(
        "server: keys={} updates={} stream_len={} bytes_out={}",
        stats.keys, stats.updates, stats.stream_len, stats.bytes_out
    );
}
