//! Fire batched UDP datagrams at a running ingest daemon.
//!
//! ```sh
//! # terminal 1: a server with UDP ingest (prints the ingest address)
//! cargo run --release --example serve -- 127.0.0.1:7071 8 127.0.0.1:7072
//!
//! # terminal 2: the firehose
//! cargo run --release --example udp_firehose -- 127.0.0.1:7072
//!
//! # terminal 3: watch the daemon's counters move
//! cargo run --release --example metrics_watch -- 127.0.0.1:7071
//! ```
//!
//! Arguments: `[udp_addr] [datagrams] [records_per_datagram]
//! [values_per_record]`. Sends fire-and-forget: UDP gives no
//! acknowledgement, so the ground truth for what landed is the daemon's
//! own counters (`ingest_applied_datagrams` and friends in the
//! `metrics_watch` output) — that asymmetry is the point of the demo.
//! For calibrated load with latency percentiles and a JSON verdict, use
//! the `qc_load` binary instead.

use std::net::UdpSocket;

use quancurrent_suite::ingest::DatagramBuilder;
use quancurrent_suite::workloads::streams::{Distribution, StreamGen};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7072".to_string());
    let datagrams: u64 = args.next().map(|s| s.parse().expect("datagram count")).unwrap_or(10_000);
    let records: usize = args.next().map(|s| s.parse().expect("records")).unwrap_or(4);
    let values: usize = args.next().map(|s| s.parse().expect("values")).unwrap_or(32);

    let socket = UdpSocket::bind("0.0.0.0:0").expect("bind sender");
    socket.connect(&addr).expect("connect sender");

    let mut gen = StreamGen::new(Distribution::Uniform, 0xF14E);
    let mut builder = DatagramBuilder::new(1400); // one MTU-ish packet
    let mut batch = vec![0.0f64; values];
    let mut sent = 0u64;
    let mut bytes_out = 0u64;
    let start = std::time::Instant::now();
    while sent < datagrams {
        for r in 0..records {
            for v in batch.iter_mut() {
                *v = gen.next_f64() * 1000.0;
            }
            let key = format!("firehose-{}", (sent as usize + r) % 8);
            if !builder.push(&key, &batch) {
                break; // budget full: ship what fits
            }
        }
        let Some(packet) = builder.finish() else { continue };
        bytes_out += packet.len() as u64;
        socket.send(&packet).expect("send");
        sent += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "fired {sent} datagrams ({bytes_out} bytes) at {addr} in {elapsed:.3}s \
         ({:.0} datagrams/s, {:.0} values/s offered)",
        sent as f64 / elapsed,
        (sent * records as u64 * values as u64) as f64 / elapsed
    );
    println!("UDP is fire-and-forget: check the server's ingest_* counters for what landed");
}
