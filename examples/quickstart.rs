//! Quickstart: ingest a stream from several threads, query quantiles.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quancurrent::Quancurrent;
use std::sync::Barrier;

fn main() {
    // A sketch with the paper's default accuracy (k = 4096 ⇒ rank error
    // well under 0.1%) and small thread-local buffers (b = 16).
    let sketch = Quancurrent::<f64>::builder().k(4096).b(16).seed(42).build();

    // Four update threads feed 1M elements each from skewed synthetic
    // "request latency" data (exponential-ish mixture).
    const THREADS: usize = 4;
    const PER_THREAD: usize = 1_000_000;
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let mut state = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1);
                for _ in 0..PER_THREAD {
                    // xorshift for a cheap deterministic stream
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                    // Latency-like: 1ms base, heavy tail.
                    let latency_ms = 1.0 + 9.0 * u.powi(4) / (1.0 - u).max(1e-9).powf(0.5);
                    updater.update(latency_ms);
                }
            });
        }
    });

    // Queries can run at any time — including concurrently with updates.
    let mut queries = sketch.query_handle();
    println!("stream visible to queries: {} elements", sketch.stream_len());
    println!("relaxation bound (4 threads): {} elements", sketch.relaxation_bound(THREADS));
    println!();
    for (label, phi) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p99.9", 0.999)] {
        let value = queries.query(phi).expect("non-empty sketch");
        println!("{label:>6}: {value:>10.3} ms");
    }

    let stats = sketch.stats();
    println!();
    println!("internals: {stats}");
}
