//! Operations monitoring: live tail-latency percentiles over a running
//! service — the paper's introduction motivates Quancurrent with exactly
//! this workload (real-time analytics à la Scuba [4]).
//!
//! Eight "request handler" threads record request latencies while a
//! monitor thread concurrently polls p50/p99 once per poll interval from a
//! freshness-bounded cached snapshot, raising an alert when the service
//! degrades (we inject a latency regression halfway through).
//!
//! ```sh
//! cargo run --release --example operations_monitoring
//! ```

use quancurrent::Quancurrent;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Barrier;

const HANDLERS: usize = 8;
const REQUESTS_PER_HANDLER: usize = 1_500_000;

fn main() {
    // ρ = 1.01: the monitor may answer from a snapshot at most 1% stale —
    // an order of magnitude fresher than FCDS could sustain (see §5.5).
    let sketch = Quancurrent::<f64>::builder()
        .k(1024)
        .b(16)
        .numa_nodes(2)
        .threads_per_node(4)
        .rho(1.01)
        .seed(7)
        .build();

    let stop = AtomicBool::new(false);
    let degraded = AtomicBool::new(false);
    let barrier = Barrier::new(HANDLERS + 2);

    std::thread::scope(|s| {
        // Request handlers: mostly-fast latencies, with a regression
        // injected halfway through the run.
        for h in 0..HANDLERS {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            let degraded = &degraded;
            s.spawn(move || {
                barrier.wait();
                let mut state = 0xABCD_EF01u64.wrapping_mul(h as u64 + 3);
                for i in 0..REQUESTS_PER_HANDLER {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                    let mut latency_ms = 2.0 + 8.0 * u * u;
                    if i == REQUESTS_PER_HANDLER / 2 && h == 0 {
                        degraded.store(true, SeqCst);
                    }
                    if degraded.load(std::sync::atomic::Ordering::Relaxed) {
                        // The regression: a slow dependency adds a fat tail.
                        latency_ms += 40.0 * u.powi(8);
                    }
                    updater.update(latency_ms);
                }
            });
        }

        // The monitor: polls percentiles concurrently with ingestion.
        {
            let mut queries = sketch.query_handle();
            let barrier = &barrier;
            let stop = &stop;
            let sketch = &sketch;
            s.spawn(move || {
                barrier.wait();
                let mut alerts = 0;
                let mut polls = 0;
                while !stop.load(SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    let n = sketch.stream_len();
                    if n == 0 {
                        continue;
                    }
                    let p50 = queries.query(0.50).unwrap_or(0.0);
                    let p99 = queries.query(0.99).unwrap_or(0.0);
                    polls += 1;
                    let alert = p99 > 25.0;
                    if alert {
                        alerts += 1;
                    }
                    println!(
                        "[monitor] n={n:>9}  p50={p50:>7.2}ms  p99={p99:>7.2}ms {}",
                        if alert { "  << ALERT: tail latency degraded" } else { "" }
                    );
                }
                let (hits, misses) = queries.cache_stats();
                println!(
                    "[monitor] done: {polls} polls, {alerts} alerts, snapshot cache {hits} hits / {misses} rebuilds"
                );
                assert!(alerts > 0, "the injected regression must be detected");
            });
        }

        // Coordinator: wait for handlers (they're the first HANDLERS+2
        // barrier parties), then stop the monitor.
        barrier.wait();
        // Handlers finish on their own; watch visible stream size approach
        // the total.
        let total = (HANDLERS * REQUESTS_PER_HANDLER) as u64;
        loop {
            let visible = sketch.stream_len();
            if visible + sketch.relaxation_bound(HANDLERS) >= total {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, SeqCst);
    });

    println!();
    println!("final state: {:?}", sketch);
    println!("stats: {}", sketch.stats());
}
