//! Quancurrent vs FCDS, side by side: same stream, same thread count,
//! *matched relaxation* — the fairness criterion of the paper's §5.5.
//!
//! Prints throughput, the freshness each design actually delivered
//! (how many recent updates queries could miss), and answer agreement.
//!
//! ```sh
//! cargo run --release --example fcds_comparison
//! ```

use qc_fcds::Fcds;
use qc_workloads::streams::{Distribution, StreamGen};
use quancurrent::Quancurrent;
use std::sync::Barrier;
use std::time::Instant;

const THREADS: usize = 8;
const N: u64 = 8_000_000;
const K: usize = 4096;

fn main() {
    // Quancurrent at the paper's §5.5 point: b = 2048 ⇒ r = 4k + 7b ≈ 30K.
    let qc = Quancurrent::<f64>::builder().k(K).b(2048).seed(1).build();
    let r_qc = qc.relaxation_bound(THREADS);

    // FCDS with B matched so 2·N·B equals the same relaxation.
    let fcds_b = (r_qc as usize) / (2 * THREADS);
    let fcds = Fcds::<f64>::new(K, fcds_b, THREADS);
    let r_fcds = fcds.relaxation_bound(THREADS);

    println!("matched relaxation: quancurrent r = {r_qc}, fcds r = {r_fcds} (B = {fcds_b})");
    println!("feeding {N} uniform elements with {THREADS} threads each…\n");

    let qc_elapsed = {
        let barrier = Barrier::new(THREADS);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let mut updater = qc.updater();
                let barrier = &barrier;
                s.spawn(move || {
                    let mut gen = StreamGen::new(Distribution::Uniform, t as u64);
                    barrier.wait();
                    for _ in 0..N / THREADS as u64 {
                        updater.update(gen.next_f64());
                    }
                });
            }
        });
        start.elapsed()
    };

    let fcds_elapsed = {
        let barrier = Barrier::new(THREADS);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let mut worker = fcds.updater();
                let barrier = &barrier;
                s.spawn(move || {
                    let mut gen = StreamGen::new(Distribution::Uniform, t as u64);
                    barrier.wait();
                    for _ in 0..N / THREADS as u64 {
                        worker.update(gen.next_f64());
                    }
                    worker.flush();
                });
            }
        });
        start.elapsed()
    };
    fcds.drain();

    let qc_tp = N as f64 / qc_elapsed.as_secs_f64() / 1e6;
    let fcds_tp = N as f64 / fcds_elapsed.as_secs_f64() / 1e6;
    println!("quancurrent: {qc_tp:>7.2}M op/s  ({qc_elapsed:?})");
    println!("fcds:        {fcds_tp:>7.2}M op/s  ({fcds_elapsed:?})");
    println!();
    println!("paper (4-socket, 32 HW threads): QC 22M vs FCDS needing 4.5× the");
    println!("relaxation for 25M at 8 threads; at 32 threads QC 62M vs FCDS 19M.");
    println!("On hosts with fewer cores than threads the comparison compresses —");
    println!("see EXPERIMENTS.md for the analysis.");
    println!();

    // Both must agree on the distribution they summarized.
    let mut qc_handle = qc.query_handle();
    println!("quantile   quancurrent      fcds");
    println!("---------------------------------");
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
        let a = qc_handle.query(phi).unwrap();
        let b = fcds.query(phi).unwrap();
        assert!((a - b).abs() < 0.02, "estimators diverge at phi={phi}: {a} vs {b}");
        println!("{phi:>8.2}  {a:>11.5}  {b:>9.5}");
    }
    println!("\nboth within ε of each other ✓");
}
