//! Conversions between the workspace's sketch representations.
//!
//! The paper leaves merging of concurrent sketches to future work; this
//! module provides the natural construction: a Quancurrent snapshot is a
//! set of weight-`2^i` sorted levels, which is exactly the shape the
//! sequential sketch's mergeable-summaries machinery absorbs. Converting
//! snapshots to sequential sketches therefore makes concurrent sketches
//! mergeable (at quiescence or at snapshot granularity):
//!
//! ```
//! use quancurrent::Quancurrent;
//! use quancurrent_suite::convert::summary_to_sequential;
//!
//! let k = 64;
//! let shard_a = Quancurrent::<u64>::builder().k(k).b(4).seed(1).build();
//! let shard_b = Quancurrent::<u64>::builder().k(k).b(4).seed(2).build();
//! let mut ua = shard_a.updater();
//! let mut ub = shard_b.updater();
//! for i in 0..50_000u64 {
//!     ua.update(i);
//!     ub.update(i + 50_000);
//! }
//!
//! // Convert both snapshots and merge.
//! let mut merged = summary_to_sequential(&shard_a.snapshot(), k, 7);
//! merged.merge_from(&summary_to_sequential(&shard_b.snapshot(), k, 8));
//!
//! let n = merged.n();
//! let median = merged.quantile_bits(0.5).unwrap();
//! assert!((40_000..60_000).contains(&median));
//! assert_eq!(n, shard_a.stream_len() + shard_b.stream_len());
//! ```

use qc_common::summary::WeightedSummary;
use qc_sequential::QuantilesSketch;

/// Rebuild a sequential sketch from **any** weighted summary, conserving
/// total weight exactly.
///
/// This is [`QuantilesSketch::absorb_summary`] behind the historical
/// conversion name. Earlier releases panicked on summaries whose weights
/// were not powers of two or whose level sizes were not multiples of `k`;
/// the absorb path is total — arbitrary weights are decomposed binarily
/// and ragged levels descend the hierarchy without losing weight.
pub fn summary_to_sequential(summary: &WeightedSummary, k: usize, seed: u64) -> QuantilesSketch {
    let mut sketch = QuantilesSketch::with_seed(k, seed);
    sketch.absorb_summary(summary);
    sketch
}

/// Serialize any sketch summary into a `qc-store` wire frame — the bridge
/// between the in-process sketches and the keyed store / interchange layer.
pub fn summary_to_bytes(summary: &WeightedSummary) -> Vec<u8> {
    qc_store::encode_summary(summary)
}

/// Decode a wire frame back into a summary, compacted to at most `2k`
/// retained items per weight level.
///
/// Accepts frames with **arbitrary** weights (the wire format does not
/// restrict them to powers of two): [`qc_store::merge_summaries`]
/// decomposes weights binarily, so this never panics on a well-formed
/// frame, whatever produced it.
pub fn bytes_to_summary(
    buf: &[u8],
    k: usize,
    seed: u64,
) -> Result<WeightedSummary, qc_store::WireError> {
    let decoded = qc_store::decode_summary(buf)?;
    Ok(qc_store::merge_summaries(std::slice::from_ref(&decoded), k, seed))
}

/// Rebuild a **sequential** sketch from a wire frame.
///
/// Total, like [`summary_to_sequential`]: arbitrary weights and ragged
/// level sizes are absorbed exactly. [`bytes_to_summary`] differs only in
/// its output type (a compacted summary rather than a live sketch).
pub fn bytes_to_sequential(
    buf: &[u8],
    k: usize,
    seed: u64,
) -> Result<QuantilesSketch, qc_store::WireError> {
    let decoded = qc_store::decode_summary(buf)?;
    Ok(summary_to_sequential(&decoded, k, seed))
}

/// Merge any number of summaries (from concurrent or sequential sketches)
/// into one sequential sketch with parameter `k`.
pub fn merge_summaries<'a>(
    summaries: impl IntoIterator<Item = &'a WeightedSummary>,
    k: usize,
    seed: u64,
) -> QuantilesSketch {
    let mut iter = summaries.into_iter();
    let mut merged = match iter.next() {
        Some(first) => summary_to_sequential(first, k, seed),
        None => return QuantilesSketch::with_seed(k, seed),
    };
    for (i, summary) in iter.enumerate() {
        let sketch = summary_to_sequential(summary, k, seed.wrapping_add(i as u64 + 1));
        merged.merge_from(&sketch);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_common::Summary;
    use quancurrent::Quancurrent;

    fn concurrent_sketch(k: usize, range: std::ops::Range<u64>, seed: u64) -> Quancurrent<u64> {
        let sketch = Quancurrent::<u64>::builder().k(k).b(4).seed(seed).build();
        let mut updater = sketch.updater();
        for i in range {
            updater.update(i);
        }
        sketch
    }

    #[test]
    fn conversion_preserves_stream_size() {
        let k = 32;
        let qc = concurrent_sketch(k, 0..100_000, 1);
        let seq = summary_to_sequential(&qc.snapshot(), k, 2);
        assert_eq!(seq.n(), qc.stream_len());
        assert_eq!(seq.summary().stream_len(), qc.stream_len());
    }

    #[test]
    fn conversion_preserves_estimates() {
        let k = 128;
        let qc = concurrent_sketch(k, 0..200_000, 3);
        let seq = summary_to_sequential(&qc.snapshot(), k, 4);
        let eps = seq.epsilon();
        let n = seq.n() as f64;
        for phi in [0.1, 0.5, 0.9] {
            let q = seq.quantile_bits(phi).unwrap() as f64;
            assert!(
                (q - phi * 200_000.0).abs() / 200_000.0 < 4.0 * eps + 4.0 * k as f64 / n,
                "phi={phi}: {q}"
            );
        }
    }

    #[test]
    fn merging_three_shards_covers_union() {
        let k = 64;
        let shards = [
            concurrent_sketch(k, 0..60_000, 5),
            concurrent_sketch(k, 60_000..120_000, 6),
            concurrent_sketch(k, 120_000..180_000, 7),
        ];
        let snaps: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let merged = merge_summaries(snaps.iter(), k, 9);
        let total: u64 = shards.iter().map(|s| s.stream_len()).sum();
        assert_eq!(merged.n(), total);
        let median = merged.quantile_bits(0.5).unwrap();
        assert!((70_000..110_000).contains(&median), "median {median}");
        // Cross-shard quantiles: the first third ends near 60k.
        let third = merged.quantile_bits(1.0 / 3.0).unwrap();
        assert!((45_000..75_000).contains(&third), "p33 {third}");
    }

    #[test]
    fn empty_inputs() {
        let merged = merge_summaries([], 16, 1);
        assert_eq!(merged.n(), 0);
        let empty = WeightedSummary::empty();
        let seq = summary_to_sequential(&empty, 16, 2);
        assert_eq!(seq.n(), 0);
    }

    #[test]
    fn wire_bridge_roundtrips_concurrent_snapshots() {
        let k = 64;
        let qc = concurrent_sketch(k, 0..80_000, 21);
        let frame = summary_to_bytes(&qc.snapshot());
        let seq = bytes_to_sequential(&frame, k, 22).expect("frame decodes");
        assert_eq!(seq.n(), qc.stream_len());
        let median = seq.quantile_bits(0.5).unwrap();
        assert!((25_000..55_000).contains(&median), "median {median}");
    }

    #[test]
    fn wire_bridge_normalizes_arbitrary_weights() {
        use qc_common::summary::WeightedItem;
        // Weight 5 would make summary_to_sequential panic; bytes_to_summary
        // decomposes it instead (levels 0 and 2) with exact total weight.
        let odd = WeightedSummary::from_items(vec![WeightedItem { value_bits: 9, weight: 5 }]);
        let back = bytes_to_summary(&summary_to_bytes(&odd), 16, 1).unwrap();
        assert_eq!(back.stream_len(), 5);
        assert!(back.items().iter().all(|it| it.weight.is_power_of_two()));
    }

    #[test]
    fn wire_bridge_surfaces_decode_errors() {
        assert!(bytes_to_sequential(b"not a frame", 16, 1).is_err());
    }

    #[test]
    fn sequential_summaries_also_convert() {
        let mut a = qc_sequential::QuantilesSketch::with_seed(32, 1);
        for i in 0..50_000u64 {
            a.update(i);
        }
        let back = summary_to_sequential(&a.summary(), 32, 2);
        assert_eq!(back.n(), 50_000);
        let m = back.quantile_bits(0.5).unwrap();
        assert!((15_000..35_000).contains(&m), "median {m}");
    }
}
