//! Umbrella crate for the Quancurrent reproduction.
//!
//! Re-exports the public surface of every workspace crate so examples and
//! downstream users can depend on a single crate:
//!
//! * [`quancurrent`] — the concurrent Quantiles sketch (the paper's
//!   contribution).
//! * [`sequential`] — the Agarwal et al. sequential sketch it builds on.
//! * [`fcds`] — the FCDS concurrent baseline it is compared against.
//! * [`common`] — shared kernels (key embeddings, summaries, error math)
//!   and the unified sketch-engine trait API ([`common::engine`]): every
//!   backend above implements the applicable capability traits
//!   ([`QuantileEstimator`], [`StreamIngest`], [`MergeableSketch`],
//!   [`ConcurrentIngest`], [`SharedIngest`]), so stores, servers, and
//!   benches are written once against [`SketchEngine`].
//! * [`store`] — the sharded keyed sketch store: versioned wire format,
//!   weight-aware summary merging, and the lock-striped key registry,
//!   generic over the per-key engine. The default [`TieredEngine`] starts
//!   keys on the compact sequential tier and promotes them to Quancurrent
//!   under update pressure.
//! * [`server`] — the TCP serving layer over the store: binary protocol,
//!   thread-pooled connection handling, and the blocking client.
//! * [`ingest`] — the high-rate UDP front door: CRC-checked batched
//!   datagrams, a never-blocking socket thread feeding lease-reusing
//!   processors, exact drop accounting, and an overload circuit breaker.
//! * [`load`] — the traffic harness: open-loop UDP writers plus TCP
//!   queriers with self-sketched latency percentiles and machine-readable
//!   JSON reports (the `qc_load` binary).
//! * [`mwcas`] — the software DCAS / multi-word CAS substrate.
//! * [`reclaim`] — interval-based memory reclamation (IBR).
//! * [`workloads`] — stream generators, the exact oracle, and the
//!   throughput harness used by the benchmark suite.
//!
//! See `README.md` for a guided tour and `examples/` for runnable programs.

pub mod convert;

pub use qc_common as common;
pub use qc_fcds as fcds;
pub use qc_ingest as ingest;
pub use qc_load as load;
pub use qc_mwcas as mwcas;
pub use qc_reclaim as reclaim;
pub use qc_sequential as sequential;
pub use qc_server as server;
pub use qc_store as store;
pub use qc_telemetry as telemetry;
pub use qc_workloads as workloads;
pub use quancurrent;

pub use qc_common::{
    ConcurrentIngest, InstrumentedSketch, MergeableSketch, OrderedBits, QuantileEstimator,
    SharedIngest, SketchEngine, StreamIngest, Summary, VersionedSketch,
};
pub use qc_server::{Client, Server, ServerConfig};
pub use qc_store::{
    ConcurrentEngine, SequentialEngine, SketchStore, StoreConfig, StoreEngine, Tier, TieredEngine,
    WireError,
};
