//! Cross-sketch integration: the three estimators in this workspace must
//! agree on the same stream within their error budgets.

use qc_fcds::Fcds;
use qc_sequential::Sketch;
use qc_workloads::exact::{phi_grid, AccuracyReport, ExactOracle};
use qc_workloads::streams::{Distribution, StreamGen};
use quancurrent::Quancurrent;

const N: usize = 400_000;

fn dataset(dist: Distribution, seed: u64) -> Vec<f64> {
    StreamGen::new(dist, seed).take_f64(N)
}

fn check_accuracy(name: &str, report: &AccuracyReport, eps: f64) {
    let max = report.max_error();
    assert!(max < 5.0 * eps, "{name}: max rank error {max:.5} vs ε {eps:.5} (5× budget exceeded)");
}

#[test]
fn all_three_sketches_match_oracle_on_uniform() {
    let k = 256;
    let eps = qc_common::error::sequential_epsilon(k);
    let data = dataset(Distribution::Uniform, 1);
    let oracle = ExactOracle::from_values(&data);
    let grid = phi_grid(19);

    // Sequential.
    let mut seq = Sketch::<f64>::with_seed(k, 2);
    for &x in &data {
        seq.update(x);
    }
    check_accuracy("sequential", &AccuracyReport::evaluate(&seq.summary(), &oracle, &grid), eps);

    // Quancurrent, 4 threads.
    let qc = Quancurrent::<f64>::builder().k(k).b(8).seed(3).build();
    std::thread::scope(|s| {
        for chunk in data.chunks(N / 4) {
            let mut updater = qc.updater();
            s.spawn(move || {
                for &x in chunk {
                    updater.update(x);
                }
            });
        }
    });
    check_accuracy("quancurrent", &AccuracyReport::evaluate(&qc.snapshot(), &oracle, &grid), eps);

    // FCDS, 4 workers.
    let fcds = Fcds::<f64>::new(k, 512, 4);
    std::thread::scope(|s| {
        for chunk in data.chunks(N / 4) {
            let mut worker = fcds.updater();
            s.spawn(move || {
                for &x in chunk {
                    worker.update(x);
                }
                worker.flush();
            });
        }
    });
    fcds.drain();
    check_accuracy("fcds", &AccuracyReport::evaluate(&fcds.summary(), &oracle, &grid), eps);
}

#[test]
fn sketches_agree_on_skewed_and_ordered_streams() {
    let k = 256;
    let eps = qc_common::error::sequential_epsilon(k);
    for (name, dist) in [
        ("normal", Distribution::Normal { mean: 0.0, std_dev: 3.0 }),
        ("zipf", Distribution::Zipf { s: 1.3, max: 100_000 }),
        ("ascending", Distribution::Ascending),
        ("descending", Distribution::Descending { n: N as u64 }),
        ("sawtooth", Distribution::Sawtooth { period: 1000 }),
    ] {
        let data = dataset(dist, 7);
        let oracle = ExactOracle::from_values(&data);
        let grid = phi_grid(9);

        let qc = Quancurrent::<f64>::builder().k(k).b(8).seed(5).build();
        std::thread::scope(|s| {
            for chunk in data.chunks(N / 4) {
                let mut updater = qc.updater();
                s.spawn(move || {
                    for &x in chunk {
                        updater.update(x);
                    }
                });
            }
        });
        let report = AccuracyReport::evaluate(&qc.snapshot(), &oracle, &grid);
        check_accuracy(name, &report, eps);
    }
}

/// Sharded sequential sketches merged together must agree with a
/// Quancurrent sketch over the union (the mergeable-summaries path vs the
/// concurrent path).
#[test]
fn merged_shards_match_concurrent_ingestion() {
    let k = 256;
    let eps = qc_common::error::sequential_epsilon(k);
    let data = dataset(Distribution::Normal { mean: 50.0, std_dev: 10.0 }, 11);
    let oracle = ExactOracle::from_values(&data);

    // Four sequential shards, then merge.
    let mut shards: Vec<Sketch<f64>> =
        (0..4).map(|i| Sketch::with_seed(k, 20 + i as u64)).collect();
    for (i, chunk) in data.chunks(N / 4).enumerate() {
        for &x in chunk {
            shards[i].update(x);
        }
    }
    let mut merged = shards.remove(0);
    for shard in &shards {
        merged.merge_from(shard);
    }
    assert_eq!(merged.n(), N as u64);

    let qc = Quancurrent::<f64>::builder().k(k).b(8).seed(6).build();
    std::thread::scope(|s| {
        for chunk in data.chunks(N / 4) {
            let mut updater = qc.updater();
            s.spawn(move || {
                for &x in chunk {
                    updater.update(x);
                }
            });
        }
    });

    let grid = phi_grid(9);
    let merged_report = AccuracyReport::evaluate(&merged.summary(), &oracle, &grid);
    let qc_report = AccuracyReport::evaluate(&qc.snapshot(), &oracle, &grid);
    check_accuracy("merged shards", &merged_report, eps);
    check_accuracy("concurrent", &qc_report, eps);

    // And they agree with each other (both within ε of the oracle).
    for (&(phi, e1), &(_, e2)) in merged_report.errors.iter().zip(&qc_report.errors) {
        assert!(
            (e1 - e2).abs() < 8.0 * eps,
            "phi={phi}: shard-merge err {e1} vs concurrent err {e2}"
        );
    }
}

/// At equal relaxation (the fig10 fairness premise), both concurrent
/// sketches see the same bounded lag.
#[test]
fn matched_relaxation_bounds_hold_for_both() {
    let k = 256;
    let threads = 4;

    // Quancurrent with b = 128 → r = 4k + 3·128.
    let qc = Quancurrent::<f64>::builder().k(k).b(128).seed(8).build();
    let r_qc = qc.relaxation_bound(threads);

    // FCDS with B chosen to match: r = 2·N·B ⇒ B = r / (2N).
    let b_fcds = (r_qc / (2 * threads as u64)) as usize;
    let fcds = Fcds::<f64>::new(k, b_fcds.max(1), threads);
    let r_fcds = fcds.relaxation_bound(threads);
    assert!(
        (r_qc as i64 - r_fcds as i64).unsigned_abs() <= 2 * threads as u64,
        "relaxations not matched: {r_qc} vs {r_fcds}"
    );

    let per_thread = 100_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = qc.updater();
            let mut worker = fcds.updater();
            s.spawn(move || {
                let mut gen = StreamGen::new(Distribution::Uniform, 30 + t as u64);
                for _ in 0..per_thread {
                    let x = gen.next_f64();
                    updater.update(x);
                    worker.update(x);
                }
                std::mem::forget(worker); // keep FCDS residue buffered
            });
        }
    });

    let total = threads as u64 * per_thread;
    assert!(total - qc.stream_len() <= r_qc, "quancurrent exceeded its bound");
    fcds.drain();
    assert!(total - fcds.stream_len() <= r_fcds, "fcds exceeded its bound");
}
