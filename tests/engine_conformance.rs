//! Engine-conformance suite: one parameterized property-test module run
//! against **all three sketch backends through trait objects alone**.
//!
//! Every backend is handled exclusively as `Box<dyn SketchEngine<f64>>` —
//! no concrete-type methods — and must satisfy the same contract:
//!
//! 1. **Exact weight conservation**: after `update_many` + `flush`,
//!    `stream_len` and `to_summary().stream_len()` equal the ingested
//!    count exactly, whatever internal batching/tiering happened.
//! 2. **Quantile accuracy**: every φ-estimate lands within the engine's
//!    advertised `error_bound()` of the exact rank (with the usual
//!    high-probability slack used throughout this workspace's tests).
//! 3. **Summary round-trip idempotence**: exporting a summary and
//!    absorbing it into a fresh engine of the same family conserves the
//!    weight exactly and moves quantile estimates by at most one more
//!    error budget.
//!
//! The backends: the sequential Agarwal et al. sketch (`qc-sequential`),
//! Quancurrent behind the store's [`ConcurrentEngine`] bundle (the sketch
//! plus its resident writer, which is what gives the concurrent backend
//! exact accounting), and the FCDS baseline behind [`FcdsEngine`].

use proptest::prelude::*;
use qc_fcds::FcdsEngine;
use qc_sequential::Sketch;
use qc_store::{ConcurrentEngine, TieredEngine};
use qc_workloads::ExactOracle;
use quancurrent_suite::{SketchEngine, Summary};

const K: usize = 128;

/// The backends under test, built fresh per case. The tiered engine rides
/// along as a fourth backend: it must conform in *both* tiers, so it gets
/// a low promotion threshold and is exercised across the migration.
fn engines(seed: u64) -> Vec<(&'static str, Box<dyn SketchEngine<f64>>)> {
    vec![
        ("sequential", Box::new(Sketch::<f64>::with_seed(K, seed))),
        ("concurrent", Box::new(ConcurrentEngine::<f64>::new(K, 4, seed))),
        ("fcds", Box::new(FcdsEngine::<f64>::with_seed(K, 64, seed))),
        ("tiered", Box::new(TieredEngine::<f64>::new(K, 4, seed, 512))),
    ]
}

/// A value stream with enough spread to make quantiles meaningful.
fn stream(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = qc_common::rng::Xoshiro256::seed_from_u64(seed);
    (0..len).map(|_| (rng.next_below(1 << 20) as f64) - (1 << 19) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1: exact weight conservation through the trait object.
    #[test]
    fn weight_is_conserved_exactly(
        len in 1usize..4000,
        seed in 1u64..1_000,
    ) {
        let values = stream(len, seed);
        for (name, mut engine) in engines(seed) {
            engine.update_many(&values);
            engine.flush();
            prop_assert_eq!(
                engine.stream_len(), len as u64,
                "{}: stream_len after flush", name
            );
            prop_assert_eq!(
                engine.to_summary().stream_len(), len as u64,
                "{}: summary weight", name
            );
        }
    }

    /// Contract 2: quantile estimates within the advertised ε(k).
    #[test]
    fn quantile_error_is_bounded(
        len in 512usize..6000,
        seed in 1u64..500,
    ) {
        let values = stream(len, seed);
        let oracle = ExactOracle::from_values(&values);
        for (name, mut engine) in engines(seed) {
            engine.update_many(&values);
            engine.flush();
            let eps = engine.error_bound();
            prop_assert!(eps > 0.0 && eps < 0.5, "{}: eps {}", name, eps);
            for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
                let est = engine.query(phi).expect("non-empty stream answers");
                // ε is a high-probability bound; 4ε absorbs the fixed
                // seeds while still catching real estimator bugs (the
                // same margin the per-crate suites use).
                let err = oracle.rank_error(phi, quancurrent_suite::OrderedBits::to_ordered_bits(est));
                prop_assert!(
                    err <= 4.0 * eps + 1.0 / len as f64,
                    "{}: phi={} err={} eps={}", name, phi, err, eps
                );
            }
        }
    }

    /// Contract 3: summary round-trip idempotence across same-family
    /// engines — weight exact, estimates within one more error budget.
    #[test]
    fn summary_round_trip_is_idempotent(
        len in 256usize..4000,
        seed in 1u64..500,
    ) {
        let values = stream(len, seed);
        for ((name, mut engine), (_, mut fresh)) in
            engines(seed).into_iter().zip(engines(seed.wrapping_add(7)))
        {
            engine.update_many(&values);
            engine.flush();
            let exported = engine.to_summary();
            fresh.absorb_summary(&exported);
            prop_assert_eq!(
                fresh.stream_len(), len as u64,
                "{}: absorbed weight", name
            );
            let back = fresh.to_summary();
            prop_assert_eq!(
                back.stream_len(), exported.stream_len(),
                "{}: round-trip weight", name
            );
            let eps = engine.error_bound();
            for phi in [0.1, 0.5, 0.9] {
                let a = engine.query(phi).unwrap();
                let b = fresh.query(phi).unwrap();
                // Compare through ranks of the original stream: the two
                // estimates must agree within a small multiple of ε.
                let mut sorted = values.clone();
                sorted.sort_by(f64::total_cmp);
                let ra = sorted.partition_point(|&v| v < a) as f64 / len as f64;
                let rb = sorted.partition_point(|&v| v < b) as f64 / len as f64;
                prop_assert!(
                    (ra - rb).abs() <= 8.0 * eps + 2.0 / len as f64,
                    "{}: phi={} ranks {} vs {}", name, phi, ra, rb
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 5 (`SharedIngest` law): weight written through a leased
    /// writer handle is, after the handle's `flush`, exactly visible to
    /// `stream_len`/`to_summary`, and the flush advances `version()` past
    /// any pre-flush reading — all through the trait object alone.
    /// Backends that decline leases (`try_writer` → `None`) must keep
    /// full `&mut self` ingestion as the fallback.
    #[test]
    fn shared_ingest_law(
        len in 64usize..2000,
        leased_len in 1usize..2000,
        seed in 1u64..500,
    ) {
        let values = stream(len, seed);
        let leased_values = stream(leased_len, seed ^ 0x5ea5e);
        for (name, mut engine) in engines(seed) {
            // Prime through the exclusive path first: the tiered backend
            // only leases once hot, which this pushes it to (len > 512
            // threshold not guaranteed — small streams legitimately stay
            // cold and decline).
            engine.update_many(&values);
            engine.flush();
            let v0 = engine.version();
            match engine.try_writer() {
                None => {
                    // Declining is only legal for backends without a
                    // shared write path at this moment: the sequential
                    // sketch always, the tiered engine while cold.
                    prop_assert!(
                        name == "sequential" || name == "tiered",
                        "{}: concurrent backends must lease", name
                    );
                    continue;
                }
                Some(mut writer) => {
                    writer.update_many(&leased_values);
                    writer.flush();
                    prop_assert!(
                        engine.version() > v0,
                        "{}: a weight-moving leased flush must advance the version", name
                    );
                    let total = (len + leased_len) as u64;
                    prop_assert_eq!(
                        engine.stream_len(), total,
                        "{}: leased weight must be exactly visible after flush", name
                    );
                    prop_assert_eq!(
                        engine.to_summary().stream_len(), total,
                        "{}: summary weight", name
                    );
                    // The exclusive path still composes with the lease
                    // outstanding (the store's write lock excludes them in
                    // time; the engine must tolerate interleaving).
                    engine.update_many(&[1.0, 2.0, 3.0]);
                    engine.flush();
                    prop_assert_eq!(engine.stream_len(), total + 3, "{}: composed", name);
                }
            }
        }
    }

    /// Contract 4: the version counter is monotone across mutations and
    /// stable across reads — the invariant the store's summary cache
    /// rests on (a read tagged with version v stays valid while
    /// `version()` still returns v).
    #[test]
    fn version_advances_on_mutations_and_holds_on_reads(
        len in 1usize..2000,
        seed in 1u64..500,
    ) {
        let values = stream(len, seed);
        for (name, mut engine) in engines(seed) {
            let v0 = engine.version();
            engine.update_many(&values);
            engine.flush();
            let v1 = engine.version();
            prop_assert!(v1 > v0, "{}: flushed updates must advance the version", name);
            let _ = engine.query(0.5);
            let _ = engine.cdf(&[0.0]);
            let snapshot = engine.to_summary();
            prop_assert_eq!(
                engine.version(), v1,
                "{}: reads must not move the version", name
            );
            engine.absorb_summary(&snapshot);
            prop_assert!(
                engine.version() > v1,
                "{}: absorbing weight must advance the version", name
            );
        }
    }
}

/// Cross-backend interchange: any backend's export is absorbable by any
/// other backend, with exact weight conservation — the property the
/// tiered store's promotions/demotions and the wire layer rest on.
#[test]
fn summaries_interchange_across_backends() {
    let values = stream(3000, 42);
    let mut sources = engines(1);
    for (_, engine) in sources.iter_mut() {
        engine.update_many(&values);
        engine.flush();
    }
    for (src_name, src) in sources.iter() {
        for (dst_name, mut dst) in engines(99) {
            dst.absorb_summary(&src.to_summary());
            assert_eq!(
                dst.stream_len(),
                3000,
                "{src_name} -> {dst_name}: absorbed weight must be exact"
            );
            assert!(dst.query(0.5).is_some(), "{src_name} -> {dst_name}: queryable");
        }
    }
}

/// Multi-writer conformance for the handle-based backends: writers from
/// several threads, then exact conservation at quiescence. Run with
/// `b = 1` for Quancurrent so no tail is ever thread-local (FCDS flushes
/// its tail on writer drop).
#[test]
fn concurrent_ingest_conserves_across_writers() {
    use quancurrent_suite::ConcurrentIngest;
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5000;

    let qc = quancurrent::Quancurrent::<f64>::builder().k(64).b(1).seed(3).build();
    let fcds = qc_fcds::Fcds::<f64>::with_seed(64, 128, THREADS, 4);
    let backends: [(&str, &dyn ConcurrentIngest<f64>); 2] = [("quancurrent", &qc), ("fcds", &fcds)];

    for (name, backend) in backends {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let mut writer = backend.writer();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        writer.update((t * PER_THREAD + i) as f64);
                    }
                    writer.flush();
                });
            }
        });
        let _ = name;
    }
    fcds.drain();
    let total = (THREADS * PER_THREAD) as u64;
    // Quancurrent with b = 1: every element reached the levels or a
    // Gather&Sort buffer.
    assert_eq!(qc.stream_len() + qc.buffered_len() as u64, total, "quancurrent conservation");
    assert_eq!(qc.quiescent_summary().stream_len(), total);
    // FCDS: writer drop flushed, drain propagated everything.
    use quancurrent_suite::QuantileEstimator;
    assert_eq!(QuantileEstimator::stream_len(&fcds), total, "fcds conservation");
}
