//! PAC-bound tests: §4.2's error composition checked empirically.
//!
//! The theory: a query against an r-relaxed sketch with parameter k
//! returns, for quantile φ, an element whose rank in the processed stream
//! lies in `[(φ − ε_r)n, (φ + ε_r)n]` with ε_r = ε_c + (r/n)(1 − ε_c);
//! serving from a ρ-stale cached snapshot adds ε′ = ρ − 1.
//!
//! These are high-probability bounds, so the assertions use a slack factor
//! over fixed seeds — tight enough to catch estimator bugs, loose enough
//! to never flake.

use qc_common::error::{relaxed_epsilon, sequential_epsilon};
use qc_common::OrderedBits;
use qc_workloads::exact::ExactOracle;
use qc_workloads::streams::{Distribution, StreamGen};
use quancurrent::Quancurrent;

const SLACK: f64 = 5.0;

/// Single-threaded, quiescent: the full §4.2 bound with N = 1.
#[test]
fn quiescent_rank_error_within_relaxed_epsilon() {
    for &k in &[64usize, 256, 1024] {
        let b = 8;
        let n: u64 = 300_000;
        let sketch = Quancurrent::<f64>::builder().k(k).b(b).seed(17).build();
        let mut updater = sketch.updater();
        let mut gen = StreamGen::new(Distribution::Uniform, 23);
        let mut all = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let x = gen.next_f64();
            all.push(x.to_ordered_bits());
            updater.update(x);
        }
        let oracle = ExactOracle::from_bits(all);

        let eps_c = sequential_epsilon(k);
        let r = sketch.relaxation_bound(1);
        let eps_r = relaxed_epsilon(eps_c, r, n);

        let mut handle = sketch.query_handle();
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let est = handle.query(phi).unwrap();
            let err = oracle.rank_error(phi, est.to_ordered_bits());
            assert!(
                err <= SLACK * eps_r,
                "k={k} phi={phi}: err {err:.5} > {SLACK}·ε_r = {:.5}",
                SLACK * eps_r
            );
        }
    }
}

/// Multi-threaded ingestion must not exceed the bound either (holes and
/// concurrent propagation included).
#[test]
fn concurrent_rank_error_within_relaxed_epsilon() {
    let k = 256;
    let b = 8;
    let threads = 8;
    let n: u64 = 400_000;

    let sketch =
        Quancurrent::<f64>::builder().k(k).b(b).numa_nodes(2).threads_per_node(4).seed(31).build();
    let all = std::sync::Mutex::new(Vec::with_capacity(n as usize));
    let per_thread = n / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = sketch.updater();
            let all = &all;
            s.spawn(move || {
                let mut gen = StreamGen::new(Distribution::Uniform, 41 + t as u64);
                let mut mine = Vec::with_capacity(per_thread as usize);
                for _ in 0..per_thread {
                    let x = gen.next_f64();
                    mine.push(x.to_ordered_bits());
                    updater.update(x);
                }
                all.lock().unwrap().extend_from_slice(&mine);
            });
        }
    });
    let oracle = ExactOracle::from_bits(all.into_inner().unwrap());

    let eps_r = relaxed_epsilon(sequential_epsilon(k), sketch.relaxation_bound(threads), n);
    let mut handle = sketch.query_handle();
    for phi in [0.1, 0.5, 0.9] {
        let est = handle.query(phi).unwrap();
        let err = oracle.rank_error(phi, est.to_ordered_bits());
        assert!(err <= SLACK * eps_r, "phi={phi}: err {err:.5} vs ε_r {eps_r:.5}");
    }
}

/// Staleness composition: a cached snapshot at ratio ρ answers within
/// ε_r + (ρ − 1) of the *current* stream.
#[test]
fn cached_answers_respect_staleness_epsilon() {
    let k = 256;
    let rho = 1.25f64;
    let sketch = Quancurrent::<u64>::builder().k(k).b(4).rho(rho).seed(43).build();
    let mut updater = sketch.updater();

    // Phase 1: 200k elements; take a snapshot (cache it).
    for i in 0..200_000u64 {
        updater.update(i);
    }
    let mut handle = sketch.query_handle();
    let _ = handle.query(0.5); // cache at n ≈ 200k

    // Phase 2: grow the stream by less than ρ, same distribution shape
    // (appending a disjoint but same-shape range would break stationarity,
    // so keep extending the same uniform range interleaved).
    for i in 0..40_000u64 {
        updater.update(i * 5); // stays within [0, 200k) value range
    }

    // The cached snapshot must still be served (ratio ≤ ρ)...
    let before = handle.cache_stats();
    let est = handle.query(0.5).unwrap();
    let after = handle.cache_stats();
    assert_eq!(after.0, before.0 + 1, "expected a cache hit under ρ = {rho}");

    // ...and its answer must be within ε_r + (ρ − 1) of the current stream.
    let n_now = sketch.stream_len();
    let eps_total =
        relaxed_epsilon(sequential_epsilon(k), sketch.relaxation_bound(1), n_now) + (rho - 1.0);
    // Build the current stream's oracle.
    let mut all: Vec<u64> = (0..200_000u64).collect();
    all.extend((0..40_000u64).map(|i| i * 5));
    // Clip to what's actually visible (relaxation hides a tail; the bound
    // already accounts for it).
    let oracle = ExactOracle::from_bits(all.iter().map(|&x| x.to_ordered_bits()).collect());
    let err = oracle.rank_error(0.5, est.to_ordered_bits());
    assert!(err <= eps_total, "stale answer err {err:.5} > ε {eps_total:.5}");
}

/// ε shrinks like the theory says when k grows (sanity of the whole
/// accuracy story, end to end).
#[test]
fn error_scales_with_k_as_theory_predicts() {
    let n: u64 = 200_000;
    let mut measured = Vec::new();
    for &k in &[32usize, 128, 512] {
        let sketch = Quancurrent::<f64>::builder().k(k).b(8).seed(53).build();
        let mut updater = sketch.updater();
        let mut gen = StreamGen::new(Distribution::Normal { mean: 0.0, std_dev: 1.0 }, 59);
        let mut all = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let x = gen.next_f64();
            all.push(x.to_ordered_bits());
            updater.update(x);
        }
        let oracle = ExactOracle::from_bits(all);
        let mut handle = sketch.query_handle();
        let mut worst: f64 = 0.0;
        for phi in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let est = handle.query(phi).unwrap();
            worst = worst.max(oracle.rank_error(phi, est.to_ordered_bits()));
        }
        measured.push((k, worst));
    }
    // Theory: ε(32)/ε(512) ≈ 13×. Demand at least a 2× improvement to stay
    // robust to seed luck.
    let e32 = measured[0].1.max(1e-6);
    let e512 = measured[2].1.max(1e-6);
    assert!(
        e512 < e32 / 2.0 || e512 < sequential_epsilon(512),
        "error did not improve with k: {measured:?}"
    );
}
