//! End-to-end stress: the full public API under concurrent load, exactly
//! as a downstream application would drive it.

use qc_common::{OrderedBits, Summary};
use quancurrent::Quancurrent;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Barrier;

/// Updates, queries, quiescent drain, accounting, memory — one big session.
#[test]
fn full_session_on_simulated_testbed() {
    const UPDATERS: usize = 8;
    const QUERIERS: usize = 4;
    const PER_THREAD: u64 = 60_000;

    let sketch = Quancurrent::<f64>::builder()
        .k(512)
        .b(16)
        .numa_nodes(4)
        .threads_per_node(2)
        .rho(1.02)
        .seed(99)
        .build();

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(UPDATERS + QUERIERS);
    let residues: Vec<u64> = std::thread::scope(|s| {
        let mut update_joins = Vec::new();
        for t in 0..UPDATERS as u64 {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            update_joins.push(s.spawn(move || {
                barrier.wait();
                // A mix of distributions per thread: stresses merge paths.
                for i in 0..PER_THREAD {
                    let x = match t % 3 {
                        0 => (i % 1000) as f64,
                        1 => (i as f64).sin() * 500.0 + 500.0,
                        _ => i as f64 / 61.0,
                    };
                    updater.update(x);
                }
                updater.pending().len() as u64
            }));
        }
        for _ in 0..QUERIERS {
            let mut handle = sketch.query_handle();
            let barrier = &barrier;
            let stop = &stop;
            s.spawn(move || {
                barrier.wait();
                let mut previous_n = 0;
                while !stop.load(SeqCst) {
                    let qs = handle.quantiles(&[0.1, 0.5, 0.9]);
                    if let [Some(a), Some(b), Some(c)] = qs[..] {
                        assert!(a <= b && b <= c, "quantiles out of order");
                    }
                    let n = handle.cached_stream_len();
                    assert!(n >= previous_n);
                    previous_n = n;
                }
            });
        }
        let residues: Vec<u64> = update_joins.into_iter().map(|j| j.join().unwrap()).collect();
        stop.store(true, SeqCst);
        residues
    });

    let total = UPDATERS as u64 * PER_THREAD;
    let residue: u64 = residues.iter().sum();

    // Exact accounting after quiescence.
    assert_eq!(sketch.stream_len() + sketch.buffered_len() as u64 + residue, total);
    let quiescent = sketch.quiescent_summary();
    assert_eq!(quiescent.stream_len() + residue, total);

    // The quiescent summary answers sensible quantiles over the mixture.
    let p50 = quiescent.quantile_bits(0.5).map(<f64 as OrderedBits>::from_ordered_bits).unwrap();
    assert!((0.0..=1000.0).contains(&p50), "median {p50} outside data range");

    // Memory: retired blocks are bounded by live levels + protected strays.
    let (domain_stats, descriptor_bytes) = sketch.memory_stats();
    assert!(domain_stats.retired_pending < 64, "leak suspicion: {domain_stats:?}");
    assert!(descriptor_bytes < 32 << 20, "descriptor arena blew up");

    // Holes are rare but the machinery is exact: counts conserved above.
    let stats = sketch.stats();
    assert_eq!(stats.batches, sketch.stream_len() / (2 * 512));
}

/// Typed APIs: every supported element type round-trips through the full
/// concurrent pipeline.
#[test]
fn all_element_types_roundtrip() {
    fn drive<T: OrderedBits + std::fmt::Debug>(values: impl Iterator<Item = T> + Clone) {
        let sketch = Quancurrent::<T>::builder().k(16).b(4).seed(1).build();
        let mut updater = sketch.updater();
        for v in values.clone() {
            updater.update(v);
        }
        let mut handle = sketch.query_handle();
        if sketch.stream_len() > 0 {
            let lo = handle.query(0.0).unwrap();
            let hi = handle.query(1.0).unwrap();
            assert!(lo <= hi, "min {lo:?} > max {hi:?}");
        }
    }

    drive((0..10_000u64).map(|i| i * 3));
    drive((0..10_000u32).map(|i| i ^ 0xAAAA));
    drive((-5_000..5_000i64).map(|i| i * 7));
    drive(-5_000..5_000i32);
    drive((0..10_000).map(|i| (i as f64) * 0.25 - 100.0));
    drive((0..10_000).map(|i| (i as f32) * 0.5 - 50.0));
}

/// The sketch is safely shareable: `&Quancurrent` across threads, handles
/// moved into threads, drop order arbitrary.
#[test]
fn ownership_and_send_patterns() {
    let sketch = std::sync::Arc::new(Quancurrent::<u64>::builder().k(32).b(4).seed(2).build());

    let mut joins = Vec::new();
    for t in 0..4u64 {
        let sketch = std::sync::Arc::clone(&sketch);
        joins.push(std::thread::spawn(move || {
            let mut updater = sketch.updater();
            for i in 0..50_000 {
                updater.update(t * 50_000 + i);
            }
            // Handle dropped inside the thread.
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Query from yet another thread after all updaters are gone.
    let sketch2 = std::sync::Arc::clone(&sketch);
    let median = std::thread::spawn(move || {
        let mut handle = sketch2.query_handle();
        handle.query(0.5)
    })
    .join()
    .unwrap();
    assert!(median.is_some());
}

/// Snapshot linearization: a query issued after all updates completes must
/// see everything propagated at that point — and repeated queries agree
/// exactly while the sketch is quiet.
#[test]
fn quiet_sketch_gives_stable_answers() {
    let sketch = Quancurrent::<u64>::builder().k(64).b(8).seed(3).build();
    let mut updater = sketch.updater();
    for i in 0..300_000u64 {
        updater.update(i);
    }
    let mut h1 = sketch.query_handle();
    let mut h2 = sketch.query_handle();
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
        assert_eq!(h1.query(phi), h2.query(phi), "handles disagree on quiet sketch");
        assert_eq!(h1.query(phi), h1.query(phi), "same handle disagrees with itself");
    }
}
