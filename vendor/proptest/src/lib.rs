//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API, implementing exactly the surface this workspace's property tests use.
//!
//! The build container has no crates.io access, so the real proptest cannot be
//! fetched; this crate keeps the tests source-compatible. It implements
//! deterministic random generation (seeded per test name, overridable with
//! `PROPTEST_SEED`) without shrinking: on failure the generated inputs are
//! printed verbatim so a failing case can be turned into a unit test by hand.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }`
//! * `any::<T>()` for the primitive types the workspace tests use
//! * ranges (`0u64..10`, `0.0f64..=1.0`, …) as strategies
//! * tuples of strategies up to arity 4
//! * `prop::collection::{vec, btree_set}`, `prop::sample::select`
//! * `Just`, `prop_oneof!`, `.prop_map`, `.prop_flat_map`, `.boxed()`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * `ProptestConfig::with_cases`, `PROPTEST_CASES` env override

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// SplitMix64 — the same generator `qc_common::rng` seeds with; small, fast,
/// and plenty for test-case generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test name) via FNV-1a,
    /// with an optional `PROPTEST_SEED` environment override so a failing
    /// run can be reproduced or varied.
    pub fn deterministic(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (Lemire-style rejection is overkill for
    /// tests; modulo bias is irrelevant at these bound sizes).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass: a hard failure or a rejected assumption.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failed; the test panics with this message.
    Fail(String),
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (no shrinking in this subset).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T: Arbitrary`; see [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// `any::<T>()` — an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Raw-bit floats: covers subnormals, infinities and NaNs, which is what
    /// the `OrderedBits` embedding tests want to see.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range of a 64-bit type.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Split the closed interval so `hi` itself is reachable.
        if rng.below(1 << 20) == 0 {
            hi
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use super::*;

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`, cardinality drawn from `size`.
    /// Falls back to a smaller set if the element domain is too small to
    /// reach the requested cardinality (mirrors proptest's rejection cap).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let want = self.size.lo + rng.below(span) as usize;
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 64 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies (`prop::sample::…`).
pub mod sample {
    use super::*;

    /// Uniformly choose one element of `options`.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}: {}", l, format!($($fmt)*));
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test entry macro; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __qp_config: $crate::ProptestConfig = $config;
            let mut __qp_rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __qp_case in 0..__qp_config.cases {
                let mut __qp_inputs = String::new();
                let __qp_result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(
                        let $pat = {
                            let __qp_v = $crate::Strategy::generate(&$strategy, &mut __qp_rng);
                            __qp_inputs.push_str(&format!(
                                "  {} = {:?}\n", stringify!($pat), &__qp_v,
                            ));
                            __qp_v
                        };
                    )*
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __qp_result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name), __qp_case + 1, __qp_config.cases, msg, __qp_inputs,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.0f64..=1.0, z in 3usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert_eq!(z, 3);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_combinators(x in prop_oneof![Just(1u64), 5u64..8, any::<u64>().prop_map(|v| v | 1)]) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
