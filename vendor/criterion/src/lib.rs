//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build container has no crates.io access, so the real criterion cannot
//! be fetched; this crate keeps the `benches/` targets source-compatible and
//! still useful: each benchmark runs a short calibrated timing loop and
//! prints mean ns/iter (plus derived element throughput when declared via
//! [`Throughput::Elements`]). There are no statistical comparisons, HTML
//! reports, or outlier analysis.
//!
//! Knobs (environment variables):
//! * `CRITERION_MEASURE_MS` — target measurement time per benchmark in
//!   milliseconds (default 300).
//! * `CRITERION_QUICK=1` — single-pass smoke mode: every benchmark runs its
//!   closure once (CI uses this to verify bench targets stay runnable).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure: Duration,
    quick: bool,
}

impl Bencher {
    fn new(measure: Duration, quick: bool) -> Self {
        Bencher { iters_done: 0, elapsed: Duration::ZERO, measure, quick }
    }

    /// Time `routine`, running it repeatedly until the measurement window is
    /// filled (or exactly once in quick mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.elapsed = start.elapsed();
            self.iters_done = 1;
            return;
        }
        // Calibrate: grow the batch size until one batch takes >= 1/10 of the
        // measurement window, then measure whole batches.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            self.iters_done += batch;
            self.elapsed += took;
            if self.elapsed >= self.measure {
                return;
            }
            if took < self.measure / 10 && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters_done == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed by one iteration.
    Elements(u64),
    /// Bytes processed by one iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark manager.
pub struct Criterion {
    measure: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        let quick = std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
        Criterion { measure: Duration::from_millis(ms), quick }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored in this subset.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure, self.quick);
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare units-per-iteration for derived throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; this subset sizes by wall-clock window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; see `CRITERION_MEASURE_MS`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measure, self.criterion.quick);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measure, self.criterion.quick);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Finish the group (no-op beyond symmetry with the real API).
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.ns_per_iter();
    let mut line = format!("bench {name:<56} {ns:>14.1} ns/iter ({} iters)", b.iters_done);
    if let Some(tp) = throughput {
        let per_iter = match tp {
            Throughput::Elements(n) => n,
            Throughput::Bytes(n) => n,
        };
        let unit = match tp {
            Throughput::Elements(_) => "Melem/s",
            Throughput::Bytes(_) => "MB/s",
        };
        if ns > 0.0 {
            let rate = per_iter as f64 / ns * 1e9 / 1e6;
            line.push_str(&format!("  {rate:>10.2} {unit}"));
        }
    }
    println!("{line}");
}

/// Group benchmark functions into a single runner fn (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_sane_numbers() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
